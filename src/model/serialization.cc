#include "model/serialization.h"

#include <algorithm>
#include <bit>
#include <cstdint>
#include <cstring>
#include <fstream>
#include <iomanip>
#include <map>
#include <sstream>
#include <utility>
#include <vector>

#if defined(__unix__) || defined(__APPLE__)
#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>
#define LLA_HAVE_MMAP 1
#endif

#include "model/section_codec.h"
#include "model/utility.h"

namespace lla {
namespace {

std::vector<std::string> Tokenize(const std::string& line) {
  std::vector<std::string> tokens;
  std::istringstream is(line);
  std::string token;
  while (is >> token) {
    if (token[0] == '#') break;  // comment to end of line
    tokens.push_back(token);
  }
  return tokens;
}

bool ParseDouble(const std::string& token, double* out) {
  std::size_t consumed = 0;
  try {
    *out = std::stod(token, &consumed);
  } catch (...) {
    return false;
  }
  return consumed == token.size();
}

bool ParseInt(const std::string& token, int* out) {
  std::size_t consumed = 0;
  try {
    *out = std::stoi(token, &consumed);
  } catch (...) {
    return false;
  }
  return consumed == token.size();
}

std::string LineError(int line, const std::string& message) {
  std::ostringstream os;
  os << "line " << line << ": " << message;
  return os.str();
}

}  // namespace

Expected<Workload> LoadWorkload(std::istream& in) {
  using E = Expected<Workload>;
  std::vector<ResourceSpec> resources;
  std::map<std::string, std::size_t> resource_index;
  std::vector<TaskSpec> tasks;
  TaskSpec current;
  bool in_task = false;

  std::string line;
  int line_number = 0;
  while (std::getline(in, line)) {
    ++line_number;
    const auto tokens = Tokenize(line);
    if (tokens.empty()) continue;
    const std::string& keyword = tokens[0];

    if (keyword == "resource") {
      if (in_task) {
        return E::Error(LineError(line_number,
                                  "resource declared inside a task block"));
      }
      if (tokens.size() != 5) {
        return E::Error(LineError(
            line_number, "expected: resource <name> <cpu|link> <cap> <lag>"));
      }
      ResourceSpec spec;
      spec.name = tokens[1];
      if (tokens[2] == "cpu") {
        spec.kind = ResourceKind::kCpu;
      } else if (tokens[2] == "link") {
        spec.kind = ResourceKind::kNetworkLink;
      } else {
        return E::Error(LineError(line_number,
                                  "resource kind must be cpu or link"));
      }
      if (!ParseDouble(tokens[3], &spec.capacity) ||
          !ParseDouble(tokens[4], &spec.lag_ms)) {
        return E::Error(LineError(line_number, "bad capacity/lag number"));
      }
      if (resource_index.count(spec.name)) {
        return E::Error(
            LineError(line_number, "duplicate resource '" + spec.name + "'"));
      }
      resource_index[spec.name] = resources.size();
      resources.push_back(std::move(spec));
    } else if (keyword == "task") {
      if (in_task) {
        return E::Error(
            LineError(line_number, "missing 'end' before new task"));
      }
      if (tokens.size() != 3) {
        return E::Error(LineError(
            line_number, "expected: task <name> <critical_time_ms>"));
      }
      current = TaskSpec{};
      current.name = tokens[1];
      if (!ParseDouble(tokens[2], &current.critical_time_ms)) {
        return E::Error(LineError(line_number, "bad critical time"));
      }
      in_task = true;
    } else if (keyword == "utility") {
      if (!in_task) {
        return E::Error(LineError(line_number, "utility outside task"));
      }
      double a = 0, b = 0, c = 0;
      if (tokens.size() >= 4 && tokens[1] == "linear" &&
          ParseDouble(tokens[2], &a) && ParseDouble(tokens[3], &b) &&
          tokens.size() == 4) {
        current.utility = std::make_shared<LinearUtility>(a, b);
      } else if (tokens.size() == 5 && tokens[1] == "power" &&
                 ParseDouble(tokens[2], &a) && ParseDouble(tokens[3], &b) &&
                 ParseDouble(tokens[4], &c)) {
        current.utility = std::make_shared<PowerUtility>(a, b, c);
      } else if (tokens.size() == 4 && tokens[1] == "negexp" &&
                 ParseDouble(tokens[2], &a) && ParseDouble(tokens[3], &b)) {
        current.utility = std::make_shared<NegExpUtility>(a, b);
      } else if (tokens.size() == 5 && tokens[1] == "inelastic" &&
                 ParseDouble(tokens[2], &a) && ParseDouble(tokens[3], &b) &&
                 ParseDouble(tokens[4], &c)) {
        current.utility = std::make_shared<InelasticUtility>(a, b, c);
      } else {
        return E::Error(LineError(line_number, "bad utility spec"));
      }
    } else if (keyword == "trigger") {
      if (!in_task) {
        return E::Error(LineError(line_number, "trigger outside task"));
      }
      double a = 0, b = 0;
      int n = 0;
      if (tokens.size() >= 3 && tokens[1] == "periodic" &&
          ParseDouble(tokens[2], &a) &&
          (tokens.size() == 3 ||
           (tokens.size() == 4 && ParseDouble(tokens[3], &b)))) {
        current.trigger = TriggerSpec::Periodic(a, b);
      } else if (tokens.size() == 3 && tokens[1] == "poisson" &&
                 ParseDouble(tokens[2], &a)) {
        current.trigger = TriggerSpec::Poisson(a);
      } else if (tokens.size() == 5 && tokens[1] == "bursty" &&
                 ParseDouble(tokens[2], &a) && ParseInt(tokens[3], &n) &&
                 ParseDouble(tokens[4], &b)) {
        current.trigger = TriggerSpec::Bursty(a, n, b);
      } else {
        return E::Error(LineError(line_number, "bad trigger spec"));
      }
    } else if (keyword == "subtask") {
      if (!in_task) {
        return E::Error(LineError(line_number, "subtask outside task"));
      }
      if (tokens.size() != 4 && tokens.size() != 5) {
        return E::Error(LineError(
            line_number,
            "expected: subtask <name> <resource> <wcet> [min_share]"));
      }
      SubtaskSpec spec;
      spec.name = tokens[1];
      const auto it = resource_index.find(tokens[2]);
      if (it == resource_index.end()) {
        return E::Error(LineError(line_number,
                                  "unknown resource '" + tokens[2] + "'"));
      }
      spec.resource = ResourceId(it->second);
      if (!ParseDouble(tokens[3], &spec.wcet_ms)) {
        return E::Error(LineError(line_number, "bad wcet"));
      }
      if (tokens.size() == 5 && !ParseDouble(tokens[4], &spec.min_share)) {
        return E::Error(LineError(line_number, "bad min_share"));
      }
      current.subtasks.push_back(std::move(spec));
    } else if (keyword == "edge") {
      if (!in_task) {
        return E::Error(LineError(line_number, "edge outside task"));
      }
      int from = 0, to = 0;
      if (tokens.size() != 3 || !ParseInt(tokens[1], &from) ||
          !ParseInt(tokens[2], &to)) {
        return E::Error(LineError(line_number, "expected: edge <from> <to>"));
      }
      current.edges.emplace_back(from, to);
    } else if (keyword == "end") {
      if (!in_task) {
        return E::Error(LineError(line_number, "'end' without task"));
      }
      tasks.push_back(std::move(current));
      in_task = false;
    } else {
      return E::Error(
          LineError(line_number, "unknown keyword '" + keyword + "'"));
    }
  }
  if (in_task) {
    return E::Error("unexpected end of input: task '" + current.name +
                    "' missing 'end'");
  }
  return Workload::Create(std::move(resources), std::move(tasks));
}

Expected<Workload> LoadWorkloadFromString(const std::string& text) {
  std::istringstream is(text);
  return LoadWorkload(is);
}

Expected<Workload> LoadWorkloadFromFile(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    return Expected<Workload>::Error("cannot open '" + path + "'");
  }
  return LoadWorkload(in);
}

Status SaveWorkload(const Workload& workload, std::ostream& out) {
  out << "# LLA workload (see model/serialization.h for the format)\n";
  for (const ResourceInfo& resource : workload.resources()) {
    out << "resource " << resource.name << ' '
        << (resource.kind == ResourceKind::kCpu ? "cpu" : "link") << ' '
        << resource.capacity << ' ' << resource.lag_ms << '\n';
  }
  for (const TaskInfo& task : workload.tasks()) {
    out << "task " << task.name << ' ' << task.critical_time_ms << '\n';

    const UtilityFunction* utility = task.utility.get();
    if (const auto* linear = dynamic_cast<const LinearUtility*>(utility)) {
      out << "  utility linear " << linear->offset() << ' '
          << linear->slope() << '\n';
    } else if (const auto* power =
                   dynamic_cast<const PowerUtility*>(utility)) {
      out << "  utility power " << power->offset() << ' ' << power->coeff()
          << ' ' << power->exponent() << '\n';
    } else if (const auto* negexp =
                   dynamic_cast<const NegExpUtility*>(utility)) {
      out << "  utility negexp " << negexp->offset() << ' ' << negexp->rate()
          << '\n';
    } else if (const auto* inelastic =
                   dynamic_cast<const InelasticUtility*>(utility)) {
      out << "  utility inelastic " << inelastic->plateau() << ' '
          << inelastic->flat_until() << ' ' << inelastic->steepness()
          << '\n';
    } else {
      return Status::Error("SaveWorkload: unknown utility class for task '" +
                           task.name + "'");
    }

    switch (task.trigger.kind) {
      case TriggerSpec::Kind::kPeriodic:
        out << "  trigger periodic " << task.trigger.period_ms << ' '
            << task.trigger.phase_ms << '\n';
        break;
      case TriggerSpec::Kind::kPoisson:
        out << "  trigger poisson " << task.trigger.rate_per_s << '\n';
        break;
      case TriggerSpec::Kind::kBursty:
        out << "  trigger bursty " << task.trigger.period_ms << ' '
            << task.trigger.burst_size << ' '
            << task.trigger.burst_spread_ms << '\n';
        break;
    }
    for (SubtaskId sid : task.subtasks) {
      const SubtaskInfo& sub = workload.subtask(sid);
      out << "  subtask " << sub.name << ' '
          << workload.resource(sub.resource).name << ' ' << sub.wcet_ms
          << ' ' << sub.min_share << '\n';
    }
    for (const auto& [from, to] : task.dag.edges()) {
      out << "  edge " << from << ' ' << to << '\n';
    }
    out << "end\n";
  }
  return Status{};
}

Expected<std::string> SaveWorkloadToString(const Workload& workload) {
  std::ostringstream os;
  const Status status = SaveWorkload(workload, os);
  if (!status.ok()) return Expected<std::string>::Error(status.error());
  return os.str();
}

Status SaveWorkloadToFile(const Workload& workload, const std::string& path) {
  std::ofstream out(path);
  if (!out) return Status::Error("cannot open '" + path + "' for writing");
  return SaveWorkload(workload, out);
}

// ---------------------------------------------------------------------------
// StateSnapshot: line-oriented like the workload format above, but every
// double travels as the zero-padded hex of its IEEE-754 bit pattern so the
// round-trip is bit-exact (the Restore() memcmp guarantee depends on it).
//
//   snapshot v2
//   shape <resources> <paths> <subtasks> <tasks>
//   counters <iteration> <converged 0|1> <total_subtask_solves>
//   step_iteration <n>
//   price_state_primed <0|1>
//   momentum_restarts <n>                      (v2)
//   fvec <name> <count> <hex64>...
//   u8vec <name> <count> <int>...
//   u32vec <name> <count> <int>...
//   end
//
// v2 adds the accelerated-dynamics sections: the momentum_restarts counter
// and the mu_velocity / lambda_velocity / mu_base / lambda_base /
// mu_phase / lambda_phase fvecs.  The
// loader accepts both headers — a v1 file simply has none of those, which
// LlaEngine::Restore treats as fresh (zero) momentum.
// ---------------------------------------------------------------------------

namespace {

std::uint64_t DoubleBits(double value) {
  std::uint64_t bits = 0;
  static_assert(sizeof(bits) == sizeof(value));
  std::memcpy(&bits, &value, sizeof(bits));
  return bits;
}

double DoubleFromBits(std::uint64_t bits) {
  double value = 0.0;
  std::memcpy(&value, &bits, sizeof(value));
  return value;
}

bool ParseU64(const std::string& token, int base, std::uint64_t* out) {
  std::size_t consumed = 0;
  try {
    *out = std::stoull(token, &consumed, base);
  } catch (...) {
    return false;
  }
  return consumed == token.size();
}

bool ParseI64(const std::string& token, std::int64_t* out) {
  std::size_t consumed = 0;
  try {
    *out = std::stoll(token, &consumed);
  } catch (...) {
    return false;
  }
  return consumed == token.size();
}

void WriteDoubleVec(std::ostream& out, const char* name,
                    const std::vector<double>& values) {
  out << "fvec " << name << ' ' << values.size() << std::hex;
  for (double value : values) {
    out << ' ' << std::setw(16) << std::setfill('0') << DoubleBits(value);
  }
  out << std::dec << std::setfill(' ') << '\n';
}

template <typename T>
void WriteIntVec(std::ostream& out, const char* tag, const char* name,
                 const std::vector<T>& values) {
  out << tag << ' ' << name << ' ' << values.size();
  for (T value : values) out << ' ' << static_cast<std::uint64_t>(value);
  out << '\n';
}

}  // namespace

Status SaveSnapshot(const StateSnapshot& snapshot, std::ostream& out) {
  out << "# LLA state snapshot (see model/serialization.h for the format)\n";
  out << "snapshot v2\n";
  out << "shape " << snapshot.resource_count << ' ' << snapshot.path_count
      << ' ' << snapshot.subtask_count << ' ' << snapshot.task_count << '\n';
  out << "counters " << snapshot.iteration << ' '
      << (snapshot.converged ? 1 : 0) << ' ' << snapshot.total_subtask_solves
      << '\n';
  out << "step_iteration " << snapshot.step_iteration << '\n';
  out << "price_state_primed " << (snapshot.price_state_primed ? 1 : 0)
      << '\n';
  out << "momentum_restarts " << snapshot.momentum_restarts << '\n';
  WriteDoubleVec(out, "mu", snapshot.mu);
  WriteDoubleVec(out, "lambda", snapshot.lambda);
  WriteDoubleVec(out, "resource_step_multiplier",
                 snapshot.resource_step_multiplier);
  WriteDoubleVec(out, "path_step_multiplier", snapshot.path_step_multiplier);
  WriteDoubleVec(out, "recent_utilities", snapshot.recent_utilities);
  WriteDoubleVec(out, "mu_velocity", snapshot.mu_velocity);
  WriteDoubleVec(out, "lambda_velocity", snapshot.lambda_velocity);
  WriteDoubleVec(out, "mu_base", snapshot.mu_base);
  WriteDoubleVec(out, "lambda_base", snapshot.lambda_base);
  WriteDoubleVec(out, "mu_phase", snapshot.mu_phase);
  WriteDoubleVec(out, "lambda_phase", snapshot.lambda_phase);
  WriteDoubleVec(out, "shadow_mu", snapshot.shadow_mu);
  WriteDoubleVec(out, "shadow_lambda", snapshot.shadow_lambda);
  WriteDoubleVec(out, "prev_share_sums", snapshot.prev_share_sums);
  WriteDoubleVec(out, "prev_path_latencies", snapshot.prev_path_latencies);
  WriteIntVec(out, "u8vec", "mu_settled", snapshot.mu_settled);
  WriteIntVec(out, "u8vec", "lambda_settled", snapshot.lambda_settled);
  WriteIntVec(out, "u32vec", "mu_zero_epochs", snapshot.mu_zero_epochs);
  WriteIntVec(out, "u32vec", "lambda_zero_epochs",
              snapshot.lambda_zero_epochs);
  WriteIntVec(out, "u32vec", "mu_stable_epochs", snapshot.mu_stable_epochs);
  WriteIntVec(out, "u32vec", "lambda_stable_epochs",
              snapshot.lambda_stable_epochs);
  out << "end\n";
  if (!out) return Status::Error("SaveSnapshot: stream write failed");
  return Status{};
}

namespace {

Expected<StateSnapshot> LoadSnapshotText(std::istream& in) {
  using E = Expected<StateSnapshot>;
  StateSnapshot snap;
  bool saw_header = false;
  bool saw_end = false;

  std::map<std::string, std::vector<double>*> fvecs = {
      {"mu", &snap.mu},
      {"lambda", &snap.lambda},
      {"resource_step_multiplier", &snap.resource_step_multiplier},
      {"path_step_multiplier", &snap.path_step_multiplier},
      {"recent_utilities", &snap.recent_utilities},
      {"mu_velocity", &snap.mu_velocity},
      {"lambda_velocity", &snap.lambda_velocity},
      {"mu_base", &snap.mu_base},
      {"lambda_base", &snap.lambda_base},
      {"mu_phase", &snap.mu_phase},
      {"lambda_phase", &snap.lambda_phase},
      {"shadow_mu", &snap.shadow_mu},
      {"shadow_lambda", &snap.shadow_lambda},
      {"prev_share_sums", &snap.prev_share_sums},
      {"prev_path_latencies", &snap.prev_path_latencies},
  };
  std::map<std::string, std::vector<std::uint8_t>*> u8vecs = {
      {"mu_settled", &snap.mu_settled},
      {"lambda_settled", &snap.lambda_settled},
  };
  std::map<std::string, std::vector<std::uint32_t>*> u32vecs = {
      {"mu_zero_epochs", &snap.mu_zero_epochs},
      {"lambda_zero_epochs", &snap.lambda_zero_epochs},
      {"mu_stable_epochs", &snap.mu_stable_epochs},
      {"lambda_stable_epochs", &snap.lambda_stable_epochs},
  };

  std::string line;
  int line_number = 0;
  while (std::getline(in, line)) {
    ++line_number;
    const auto tokens = Tokenize(line);
    if (tokens.empty()) continue;
    if (saw_end) {
      return E::Error(LineError(line_number, "content after 'end'"));
    }
    const std::string& keyword = tokens[0];

    if (keyword == "snapshot") {
      if (tokens.size() != 2 || (tokens[1] != "v1" && tokens[1] != "v2")) {
        return E::Error(LineError(line_number, "expected: snapshot v1|v2"));
      }
      saw_header = true;
      continue;
    }
    if (!saw_header) {
      return E::Error(LineError(
          line_number, "file does not start with 'snapshot v1' or 'v2'"));
    }

    if (keyword == "shape") {
      if (tokens.size() != 5 ||
          !ParseU64(tokens[1], 10, &snap.resource_count) ||
          !ParseU64(tokens[2], 10, &snap.path_count) ||
          !ParseU64(tokens[3], 10, &snap.subtask_count) ||
          !ParseU64(tokens[4], 10, &snap.task_count)) {
        return E::Error(LineError(
            line_number, "expected: shape <resources> <paths> <subtasks> "
                         "<tasks>"));
      }
    } else if (keyword == "counters") {
      std::uint64_t converged = 0;
      if (tokens.size() != 4 || !ParseI64(tokens[1], &snap.iteration) ||
          !ParseU64(tokens[2], 10, &converged) || converged > 1 ||
          !ParseU64(tokens[3], 10, &snap.total_subtask_solves)) {
        return E::Error(LineError(
            line_number,
            "expected: counters <iteration> <converged 0|1> <solves>"));
      }
      snap.converged = converged == 1;
    } else if (keyword == "step_iteration") {
      if (tokens.size() != 2 || !ParseI64(tokens[1], &snap.step_iteration)) {
        return E::Error(LineError(line_number, "bad step_iteration"));
      }
    } else if (keyword == "price_state_primed") {
      std::uint64_t primed = 0;
      if (tokens.size() != 2 || !ParseU64(tokens[1], 10, &primed) ||
          primed > 1) {
        return E::Error(LineError(line_number, "bad price_state_primed"));
      }
      snap.price_state_primed = primed == 1;
    } else if (keyword == "momentum_restarts") {
      if (tokens.size() != 2 ||
          !ParseU64(tokens[1], 10, &snap.momentum_restarts)) {
        return E::Error(LineError(line_number, "bad momentum_restarts"));
      }
    } else if (keyword == "fvec" || keyword == "u8vec" ||
               keyword == "u32vec") {
      if (tokens.size() < 3) {
        return E::Error(
            LineError(line_number, "expected: " + keyword + " <name> <count>"));
      }
      std::uint64_t count = 0;
      if (!ParseU64(tokens[2], 10, &count) || tokens.size() != count + 3) {
        return E::Error(LineError(line_number,
                                  "vector count does not match values"));
      }
      const std::string& name = tokens[1];
      if (keyword == "fvec") {
        const auto it = fvecs.find(name);
        if (it == fvecs.end()) {
          return E::Error(LineError(line_number, "unknown fvec '" + name + "'"));
        }
        it->second->resize(count);
        for (std::uint64_t i = 0; i < count; ++i) {
          std::uint64_t bits = 0;
          if (!ParseU64(tokens[3 + i], 16, &bits)) {
            return E::Error(LineError(line_number, "bad hex double"));
          }
          (*it->second)[i] = DoubleFromBits(bits);
        }
      } else if (keyword == "u8vec") {
        const auto it = u8vecs.find(name);
        if (it == u8vecs.end()) {
          return E::Error(
              LineError(line_number, "unknown u8vec '" + name + "'"));
        }
        it->second->resize(count);
        for (std::uint64_t i = 0; i < count; ++i) {
          std::uint64_t value = 0;
          if (!ParseU64(tokens[3 + i], 10, &value) || value > 0xff) {
            return E::Error(LineError(line_number, "bad u8 value"));
          }
          (*it->second)[i] = static_cast<std::uint8_t>(value);
        }
      } else {
        const auto it = u32vecs.find(name);
        if (it == u32vecs.end()) {
          return E::Error(
              LineError(line_number, "unknown u32vec '" + name + "'"));
        }
        it->second->resize(count);
        for (std::uint64_t i = 0; i < count; ++i) {
          std::uint64_t value = 0;
          if (!ParseU64(tokens[3 + i], 10, &value) || value > 0xffffffffull) {
            return E::Error(LineError(line_number, "bad u32 value"));
          }
          (*it->second)[i] = static_cast<std::uint32_t>(value);
        }
      }
    } else if (keyword == "end") {
      saw_end = true;
    } else {
      return E::Error(
          LineError(line_number, "unknown keyword '" + keyword + "'"));
    }
  }
  if (!saw_end) {
    return E::Error("unexpected end of input: snapshot missing 'end'");
  }
  if (snap.mu.size() != snap.resource_count ||
      snap.lambda.size() != snap.path_count) {
    return E::Error("snapshot price vectors do not match declared shape");
  }
  return snap;
}

}  // namespace

Expected<StateSnapshot> LoadSnapshot(std::istream& in) {
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return LoadSnapshotFromString(buffer.str());
}

Expected<StateSnapshot> LoadSnapshotFromString(const std::string& text) {
  if (SnapshotBytesAreBinary(text)) return LoadSnapshotBinaryFromString(text);
  std::istringstream is(text);
  return LoadSnapshotText(is);
}

Expected<StateSnapshot> LoadSnapshotFromFile(const std::string& path) {
  // Binary mode + whole-file read: the format is sniffed from the magic
  // bytes, and the text parser is happy with an in-memory string either way.
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return Expected<StateSnapshot>::Error("cannot open '" + path + "'");
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  if (!in.good() && !in.eof()) {
    return Expected<StateSnapshot>::Error("cannot read '" + path + "'");
  }
  return LoadSnapshotFromString(buffer.str());
}

Expected<std::string> SaveSnapshotToString(const StateSnapshot& snapshot) {
  std::ostringstream os;
  const Status status = SaveSnapshot(snapshot, os);
  if (!status.ok()) return Expected<std::string>::Error(status.error());
  return os.str();
}

Status SaveSnapshotToFile(const StateSnapshot& snapshot,
                          const std::string& path) {
  std::ofstream out(path);
  if (!out) return Status::Error("cannot open '" + path + "' for writing");
  return SaveSnapshot(snapshot, out);
}

// ---------------------------------------------------------------------------
// Binary snapshot format "b1" (DESIGN.md §7.10).  Layout (all little-endian):
//
//   [ 0..8)   magic "LLASNAPB"
//   [ 8..12)  u32 version (1)
//   [12..16)  u32 section_count
//   [16..80)  scalar header: u64 resource/path/subtask/task counts,
//             i64 iteration, u64 total_subtask_solves, i64 step_iteration,
//             u64 momentum_restarts
//   [80..88)  u8 converged, u8 price_state_primed, 6 pad bytes
//   [88..88+32n)  section table, 32 bytes per entry:
//             u32 id, u8 elem_kind, u8 encoding, u16 pad,
//             u64 count (decoded elements), u64 offset (from payload start),
//             u64 size (encoded bytes)
//   [payload] sections back to back, each 8-byte aligned from file start.
//
// Values keep their raw IEEE-754 / integer bit patterns in every encoding,
// so the round-trip is bit-exact like the text format.  The encoding is
// chosen per section by encoded size: raw (count * width contiguous words —
// the mmap-friendly default), rle (u64 run_count, then (u64 run_len, word)
// pairs — collapses settled flags and all-1.0 step multipliers), or sparse
// (u64 nnz, then (u32 index, word) pairs, indices strictly increasing —
// collapses mostly-zero retired lambda).
// ---------------------------------------------------------------------------

namespace {

constexpr char kBinaryMagic[8] = {'L', 'L', 'A', 'S', 'N', 'A', 'P', 'B'};
constexpr std::uint32_t kBinaryVersion = 1;
constexpr std::size_t kBinaryHeaderSize = 88;
constexpr std::size_t kSectionEntrySize = 32;
/// Alloc guard when decoding corrupt tables: generous for the 10^6-subtask
/// north star, tiny next to what a hostile u64 count could demand.
constexpr std::uint64_t kMaxSectionElems = 1ull << 28;

constexpr std::uint8_t kElemF64 = 0;
constexpr std::uint8_t kElemU8 = 1;
constexpr std::uint8_t kElemU32 = 2;

std::size_t ElemWidth(std::uint8_t kind) {
  switch (kind) {
    case kElemF64: return 8;
    case kElemU8: return 1;
    case kElemU32: return 4;
  }
  return 0;
}

using b1::GetWord;
using b1::PutWord;

/// Element kind of each section id (the fixed catalogue; ids are part of
/// the format).  0xff marks an unknown id.
std::uint8_t SectionKind(std::uint32_t id) {
  if (id >= 1 && id <= 15) return kElemF64;
  if (id == 16 || id == 17) return kElemU8;
  if (id >= 18 && id <= 21) return kElemU32;
  return 0xff;
}

struct SectionEntry {
  std::uint32_t id = 0;
  std::uint8_t elem_kind = 0;
  std::uint8_t encoding = 0;
  std::uint64_t count = 0;
  std::uint64_t offset = 0;
  std::uint64_t size = 0;
};

template <typename T>
void AppendSection(std::uint32_t id, std::uint8_t kind,
                   const std::vector<T>& values,
                   std::vector<SectionEntry>* table, std::string* payload) {
  SectionEntry entry;
  entry.id = id;
  entry.elem_kind = kind;
  entry.count = values.size();
  entry.offset = payload->size();
  entry.encoding = b1::EncodeWords(values.data(), values.size(), payload);
  entry.size = payload->size() - entry.offset;
  // Keep every section 8-byte aligned from the payload start (and so from
  // the file start: header and table sizes are multiples of 8).
  while (payload->size() % 8 != 0) payload->push_back('\0');
  table->push_back(entry);
}

/// Structural validation of one section's encoding, as ValidateWords but
/// dispatched on the runtime element kind.
bool ValidateSectionWords(const char* at, std::uint64_t size,
                          std::uint8_t encoding, std::uint8_t kind,
                          std::uint64_t count, std::string* error) {
  switch (kind) {
    case kElemF64:
      return b1::ValidateWords<double>(at, size, encoding, count, error);
    case kElemU8:
      return b1::ValidateWords<std::uint8_t>(at, size, encoding, count, error);
    case kElemU32:
      return b1::ValidateWords<std::uint32_t>(at, size, encoding, count,
                                              error);
  }
  *error = "unknown section encoding";
  return false;
}

template <typename T>
void MaterializeSectionImpl(const SnapshotSectionRef& section,
                            std::vector<T>* out) {
  out->resize(section.count);
  if (!section.present() || section.count == 0) return;
  std::string error;
  // The view is pre-validated by ParseSnapshotBinary, so this cannot fail.
  const bool ok = b1::DecodeWords(section.data, section.size, section.encoding,
                                  section.count, out->data(), &error);
  (void)ok;
}

/// The fixed section catalogue; ids are part of the format.
struct SnapshotSections {
  template <typename Fn>
  static void ForEach(StateSnapshot* snap, Fn&& fn) {
    fn(1u, kElemF64, &snap->mu);
    fn(2u, kElemF64, &snap->lambda);
    fn(3u, kElemF64, &snap->resource_step_multiplier);
    fn(4u, kElemF64, &snap->path_step_multiplier);
    fn(5u, kElemF64, &snap->recent_utilities);
    fn(6u, kElemF64, &snap->mu_velocity);
    fn(7u, kElemF64, &snap->lambda_velocity);
    fn(8u, kElemF64, &snap->mu_base);
    fn(9u, kElemF64, &snap->lambda_base);
    fn(10u, kElemF64, &snap->mu_phase);
    fn(11u, kElemF64, &snap->lambda_phase);
    fn(12u, kElemF64, &snap->shadow_mu);
    fn(13u, kElemF64, &snap->shadow_lambda);
    fn(14u, kElemF64, &snap->prev_share_sums);
    fn(15u, kElemF64, &snap->prev_path_latencies);
    fn(16u, kElemU8, &snap->mu_settled);
    fn(17u, kElemU8, &snap->lambda_settled);
    fn(18u, kElemU32, &snap->mu_zero_epochs);
    fn(19u, kElemU32, &snap->lambda_zero_epochs);
    fn(20u, kElemU32, &snap->mu_stable_epochs);
    fn(21u, kElemU32, &snap->lambda_stable_epochs);
  }
};

std::string BinaryError(const std::string& message) {
  return "snapshot b1: " + message;
}

}  // namespace

bool SnapshotBytesAreBinary(const std::string& bytes) {
  return SnapshotBytesAreBinary(bytes.data(), bytes.size());
}

bool SnapshotBytesAreBinary(const char* data, std::size_t size) {
  return size >= sizeof(kBinaryMagic) &&
         std::memcmp(data, kBinaryMagic, sizeof(kBinaryMagic)) == 0;
}

Status SaveSnapshotBinary(const StateSnapshot& snapshot, std::string* out) {
  std::vector<SectionEntry> table;
  std::string payload;
  // ForEach takes a mutable snapshot so the loader can share the catalogue;
  // the save path only reads through the pointers.
  auto* mutable_snapshot = const_cast<StateSnapshot*>(&snapshot);
  SnapshotSections::ForEach(
      mutable_snapshot, [&](std::uint32_t id, std::uint8_t kind, auto* vec) {
        AppendSection(id, kind, *vec, &table, &payload);
      });

  out->clear();
  out->reserve(kBinaryHeaderSize + table.size() * kSectionEntrySize +
               payload.size());
  out->append(kBinaryMagic, sizeof(kBinaryMagic));
  PutWord<std::uint32_t>(out, kBinaryVersion);
  PutWord<std::uint32_t>(out, static_cast<std::uint32_t>(table.size()));
  PutWord<std::uint64_t>(out, snapshot.resource_count);
  PutWord<std::uint64_t>(out, snapshot.path_count);
  PutWord<std::uint64_t>(out, snapshot.subtask_count);
  PutWord<std::uint64_t>(out, snapshot.task_count);
  PutWord<std::int64_t>(out, snapshot.iteration);
  PutWord<std::uint64_t>(out, snapshot.total_subtask_solves);
  PutWord<std::int64_t>(out, snapshot.step_iteration);
  PutWord<std::uint64_t>(out, snapshot.momentum_restarts);
  out->push_back(snapshot.converged ? 1 : 0);
  out->push_back(snapshot.price_state_primed ? 1 : 0);
  out->append(6, '\0');
  for (const SectionEntry& entry : table) {
    PutWord<std::uint32_t>(out, entry.id);
    out->push_back(static_cast<char>(entry.elem_kind));
    out->push_back(static_cast<char>(entry.encoding));
    out->append(2, '\0');
    PutWord<std::uint64_t>(out, entry.count);
    PutWord<std::uint64_t>(out, entry.offset);
    PutWord<std::uint64_t>(out, entry.size);
  }
  out->append(payload);
  return Status{};
}

Expected<std::string> SaveSnapshotBinaryToString(
    const StateSnapshot& snapshot) {
  std::string bytes;
  const Status status = SaveSnapshotBinary(snapshot, &bytes);
  if (!status.ok()) return Expected<std::string>::Error(status.error());
  return bytes;
}

Status SaveSnapshotBinaryToFile(const StateSnapshot& snapshot,
                                const std::string& path) {
  std::string bytes;
  const Status status = SaveSnapshotBinary(snapshot, &bytes);
  if (!status.ok()) return status;
  std::ofstream out(path, std::ios::binary);
  if (!out) return Status::Error("cannot open '" + path + "' for writing");
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  if (!out) return Status::Error("cannot write '" + path + "'");
  return Status{};
}

Expected<SnapshotView> ParseSnapshotBinary(const char* data,
                                           std::size_t size) {
  using E = Expected<SnapshotView>;
  if (size < sizeof(kBinaryMagic) ||
      std::memcmp(data, kBinaryMagic, sizeof(kBinaryMagic)) != 0) {
    return E::Error(BinaryError("missing magic bytes"));
  }
  if (size < kBinaryHeaderSize) {
    return E::Error(BinaryError("truncated header"));
  }
  const std::uint32_t version = GetWord<std::uint32_t>(data + 8);
  if (version != kBinaryVersion) {
    return E::Error(BinaryError("unsupported version " +
                                std::to_string(version)));
  }
  const std::uint32_t section_count = GetWord<std::uint32_t>(data + 12);
  const std::size_t table_end =
      kBinaryHeaderSize +
      static_cast<std::size_t>(section_count) * kSectionEntrySize;
  if (section_count > (size - kBinaryHeaderSize) / kSectionEntrySize) {
    return E::Error(BinaryError("truncated section table"));
  }

  SnapshotView view;
  view.resource_count = GetWord<std::uint64_t>(data + 16);
  view.path_count = GetWord<std::uint64_t>(data + 24);
  view.subtask_count = GetWord<std::uint64_t>(data + 32);
  view.task_count = GetWord<std::uint64_t>(data + 40);
  view.iteration = GetWord<std::int64_t>(data + 48);
  view.total_subtask_solves = GetWord<std::uint64_t>(data + 56);
  view.step_iteration = GetWord<std::int64_t>(data + 64);
  view.momentum_restarts = GetWord<std::uint64_t>(data + 72);
  const std::uint8_t converged = static_cast<std::uint8_t>(data[80]);
  const std::uint8_t primed = static_cast<std::uint8_t>(data[81]);
  if (converged > 1 || primed > 1) {
    return E::Error(BinaryError("bad header flags"));
  }
  view.converged = converged == 1;
  view.price_state_primed = primed == 1;

  const char* payload = data + table_end;
  const std::size_t payload_size = size - table_end;
  for (std::uint32_t s = 0; s < section_count; ++s) {
    const char* row = data + kBinaryHeaderSize + s * kSectionEntrySize;
    SectionEntry entry;
    entry.id = GetWord<std::uint32_t>(row);
    entry.elem_kind = static_cast<std::uint8_t>(row[4]);
    entry.encoding = static_cast<std::uint8_t>(row[5]);
    entry.count = GetWord<std::uint64_t>(row + 8);
    entry.offset = GetWord<std::uint64_t>(row + 16);
    entry.size = GetWord<std::uint64_t>(row + 24);

    const std::string where = "section id " + std::to_string(entry.id);
    const std::uint8_t kind = SectionKind(entry.id);
    if (entry.id <= SnapshotView::kMaxSectionId &&
        view.sections[entry.id].present()) {
      return E::Error(BinaryError("duplicate " + where));
    }
    if (ElemWidth(entry.elem_kind) == 0) {
      return E::Error(BinaryError(where + ": unknown element kind"));
    }
    if (entry.count > kMaxSectionElems) {
      return E::Error(BinaryError(where + ": element count out of range"));
    }
    if (entry.offset % 8 != 0 || entry.offset > payload_size ||
        entry.size > payload_size - entry.offset) {
      return E::Error(BinaryError(where + ": payload out of bounds"));
    }
    if (kind == 0xff) {
      return E::Error(BinaryError("unknown " + where));
    }
    if (kind != entry.elem_kind) {
      return E::Error(
          BinaryError(where + ": element kind does not match section id"));
    }
    // Full structural validation up front, so materialization — straight
    // into the consumer's buffers, possibly much later — cannot fail.
    std::string decode_error;
    if (!ValidateSectionWords(payload + entry.offset, entry.size,
                              entry.encoding, kind, entry.count,
                              &decode_error)) {
      return E::Error(BinaryError(where + ": " + decode_error));
    }
    SnapshotSectionRef& ref = view.sections[entry.id];
    ref.elem_kind = entry.elem_kind;
    ref.encoding = entry.encoding;
    ref.count = entry.count;
    ref.data = payload + entry.offset;
    ref.size = entry.size;
  }

  const std::uint64_t mu_count =
      view.sections[1].present() ? view.sections[1].count : 0;
  const std::uint64_t lambda_count =
      view.sections[2].present() ? view.sections[2].count : 0;
  if (mu_count != view.resource_count || lambda_count != view.path_count) {
    return E::Error(
        BinaryError("price vectors do not match declared shape"));
  }
  return view;
}

void MaterializeSection(const SnapshotSectionRef& section,
                        std::vector<double>* out) {
  MaterializeSectionImpl(section, out);
}

void MaterializeSection(const SnapshotSectionRef& section,
                        std::vector<std::uint8_t>* out) {
  MaterializeSectionImpl(section, out);
}

void MaterializeSection(const SnapshotSectionRef& section,
                        std::vector<std::uint32_t>* out) {
  MaterializeSectionImpl(section, out);
}

StateSnapshot MaterializeSnapshot(const SnapshotView& view) {
  StateSnapshot snap;
  snap.resource_count = view.resource_count;
  snap.path_count = view.path_count;
  snap.subtask_count = view.subtask_count;
  snap.task_count = view.task_count;
  snap.iteration = view.iteration;
  snap.converged = view.converged;
  snap.total_subtask_solves = view.total_subtask_solves;
  snap.step_iteration = view.step_iteration;
  snap.momentum_restarts = view.momentum_restarts;
  snap.price_state_primed = view.price_state_primed;
  SnapshotSections::ForEach(
      &snap, [&](std::uint32_t id, std::uint8_t kind, auto* vec) {
        (void)kind;
        MaterializeSection(view.sections[id], vec);
      });
  return snap;
}

Expected<StateSnapshot> LoadSnapshotBinaryFromString(const std::string& bytes) {
  Expected<SnapshotView> view = ParseSnapshotBinary(bytes.data(), bytes.size());
  if (!view.ok()) return Expected<StateSnapshot>::Error(view.error());
  return MaterializeSnapshot(view.value());
}

MappedSnapshotFile::MappedSnapshotFile(MappedSnapshotFile&& other) noexcept
    : data_(other.data_),
      size_(other.size_),
      mapped_(other.mapped_),
      fallback_(std::move(other.fallback_)) {
  other.data_ = nullptr;
  other.size_ = 0;
  other.mapped_ = false;
  if (!mapped_ && data_ != nullptr) data_ = fallback_.data();
}

MappedSnapshotFile& MappedSnapshotFile::operator=(
    MappedSnapshotFile&& other) noexcept {
  if (this == &other) return *this;
  this->~MappedSnapshotFile();
  new (this) MappedSnapshotFile(std::move(other));
  return *this;
}

MappedSnapshotFile::~MappedSnapshotFile() {
#if defined(LLA_HAVE_MMAP)
  if (mapped_ && data_ != nullptr) {
    ::munmap(const_cast<char*>(data_), size_);
  }
#endif
  data_ = nullptr;
  size_ = 0;
  mapped_ = false;
}

Expected<MappedSnapshotFile> MappedSnapshotFile::Open(const std::string& path) {
  using E = Expected<MappedSnapshotFile>;
  MappedSnapshotFile file;
#if defined(LLA_HAVE_MMAP)
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd >= 0) {
    struct stat st;
    if (::fstat(fd, &st) == 0 && st.st_size >= 0) {
      const std::size_t size = static_cast<std::size_t>(st.st_size);
      if (size == 0) {
        ::close(fd);
        file.data_ = "";
        file.size_ = 0;
        return file;
      }
      void* map = ::mmap(nullptr, size, PROT_READ, MAP_PRIVATE, fd, 0);
      ::close(fd);
      if (map != MAP_FAILED) {
        file.data_ = static_cast<const char*>(map);
        file.size_ = size;
        file.mapped_ = true;
        return file;
      }
    } else {
      ::close(fd);
    }
    // fstat/mmap failure: fall through to the buffered read.
  }
#endif
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return E::Error("cannot open '" + path + "' for reading");
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  if (!in.good() && !in.eof()) {
    return E::Error("cannot read '" + path + "'");
  }
  file.fallback_ = buffer.str();
  file.data_ = file.fallback_.data();
  file.size_ = file.fallback_.size();
  file.mapped_ = false;
  return file;
}

}  // namespace lla
