// Online model error correction (paper Sec. 6.3).
//
// The share model share = (wcet + lag)/lat is conservative: it assumes every
// job contends with worst-case interference, but in the running system job
// releases are not synchronized and schedulers are work-conserving, so
// measured latencies undershoot the prediction.  The corrector compares a
// high percentile of the measured per-subtask latency against the *base*
// model's prediction at the enacted share, smooths the difference
// exponentially, and installs the additively corrected share function
// share = (wcet + lag)/(lat - error) into the LatencyModel — which the
// optimizer consults on its next iteration.
#pragma once

#include <vector>

#include "common/stats.h"
#include "model/latency_model.h"
#include "model/workload.h"

namespace lla::correction {

struct CorrectionConfig {
  /// Percentile of the measured latency used as the sample ("greater than
  /// 90th percentile" per the paper).
  double percentile = 0.95;
  /// Optional per-subtask percentiles (by SubtaskId), e.g. from
  /// PlanSubtaskPercentiles; when non-empty it overrides `percentile`.
  std::vector<double> per_subtask_percentiles;
  /// Exponential smoothing factor for the error value.
  double alpha = 0.3;
  /// Subtasks with fewer samples in an observation window are skipped.
  std::size_t min_samples = 20;
  /// Errors are clamped so the corrected model keeps a positive latency
  /// floor: error >= -(1 - margin) * predicted.  Protects against wild
  /// early samples.
  double clamp_margin = 0.05;
};

class ErrorCorrector {
 public:
  /// `model` must outlive the corrector; corrections are installed into it.
  ErrorCorrector(const Workload& workload, LatencyModel* model,
                 CorrectionConfig config = {});

  /// Feeds one observation window: `measured[s]` holds the latency samples
  /// of subtask s and `enacted_shares[s]` the share in force while they
  /// were collected.  Updates the model for every subtask with enough
  /// samples.
  void Observe(const std::vector<SampleQuantile>& measured,
               const std::vector<double>& enacted_shares);

  /// Current smoothed error of a subtask (0 until first update).
  double error(SubtaskId id) const {
    return smoothers_[id.value()].initialized()
               ? smoothers_[id.value()].value()
               : 0.0;
  }

  /// Forgets all accumulated error state and resets the model to the
  /// uncorrected base.
  void Reset();

 private:
  const Workload* workload_;
  LatencyModel* model_;
  CorrectionConfig config_;
  std::vector<ExponentialSmoother> smoothers_;
};

}  // namespace lla::correction
