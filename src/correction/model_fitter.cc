#include "correction/model_fitter.h"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "model/share.h"

namespace lla::correction {

ShareModelFitter::ShareModelFitter(const Workload& workload,
                                   LatencyModel* model, FitterConfig config)
    : workload_(&workload), model_(model), config_(config) {
  assert(model != nullptr);
  assert(config.percentile > 0.0 && config.percentile < 1.0);
  assert(config.forgetting > 0.0 && config.forgetting <= 1.0);
  assert(config.min_samples >= 2);
  states_.resize(workload.subtask_count());
  fits_.resize(workload.subtask_count());
}

void ShareModelFitter::Observe(const std::vector<SampleQuantile>& measured,
                               const std::vector<double>& enacted_shares) {
  assert(measured.size() == workload_->subtask_count());
  assert(enacted_shares.size() == workload_->subtask_count());
  for (const SubtaskInfo& sub : workload_->subtasks()) {
    const std::size_t s = sub.id.value();
    if (measured[s].count() < config_.min_window_samples) continue;
    const double share = enacted_shares[s];
    if (share <= 0.0) continue;

    const double x = 1.0 / share;
    const double y = measured[s].Value(config_.percentile);

    RlsState& state = states_[s];
    const double f = config_.forgetting;
    state.sxx = f * state.sxx + x * x;
    state.sx1 = f * state.sx1 + x;
    state.s11 = f * state.s11 + 1.0;
    state.sxy = f * state.sxy + x * y;
    state.s1y = f * state.s1y + y;
    if (state.count == 0) {
      state.x_min = state.x_max = x;
    } else {
      state.x_min = std::min(state.x_min, x);
      state.x_max = std::max(state.x_max, x);
    }
    ++state.count;

    TryInstall(sub.id);
  }
}

void ShareModelFitter::TryInstall(SubtaskId id) {
  const std::size_t s = id.value();
  const RlsState& state = states_[s];
  Fit& fit = fits_[s];
  fit.observations = state.count;

  if (state.count < config_.min_samples) return;
  const double mean_x = state.sx1 / state.s11;
  if (mean_x <= 0.0) return;
  if ((state.x_max - state.x_min) < config_.min_regressor_spread * mean_x) {
    return;  // regressors too clustered to identify two parameters
  }

  // Solve the 2x2 normal equations
  //   [sxx sx1][theta1]   [sxy]
  //   [sx1 s11][theta2] = [s1y].
  const double det = state.sxx * state.s11 - state.sx1 * state.sx1;
  if (std::fabs(det) < 1e-12 * std::max(1.0, state.sxx * state.s11)) return;
  const double work = (state.sxy * state.s11 - state.sx1 * state.s1y) / det;
  const double offset = (state.sxx * state.s1y - state.sx1 * state.sxy) / det;

  // Sanity: positive effective work, bounded relative to the nominal.
  const SubtaskInfo& sub = workload_->subtask(id);
  if (work <= 0.0 || work > config_.max_work_ratio * sub.work_ms) return;
  // The fitted curve must keep a usable latency range: at the largest
  // observed share the predicted latency must stay positive.
  const double min_x = state.x_min;
  if (work * min_x + offset <= 0.0) return;

  fit.work_ms = work;
  fit.offset_ms = offset;
  fit.valid = true;
  // CorrectedWcetLagShare(wcet=work, lag=0, error=offset) realizes
  // share(lat) = work / (lat - offset).
  model_->SetShareFunction(
      id, std::make_shared<CorrectedWcetLagShare>(work, 0.0, offset));
}

void ShareModelFitter::Reset() {
  states_.assign(workload_->subtask_count(), RlsState{});
  fits_.assign(workload_->subtask_count(), Fit{});
  for (const SubtaskInfo& sub : workload_->subtasks()) {
    const double lag = workload_->resource(sub.resource).lag_ms;
    model_->SetShareFunction(
        sub.id, std::make_shared<WcetLagShare>(sub.wcet_ms, lag));
  }
}

}  // namespace lla::correction
