// Online share-model construction (paper Sec. 1: "the model itself can be
// constructed on-line, and iteratively improved as the system is running").
//
// Where ErrorCorrector trusts the (wcet + lag) numerator and learns only an
// additive offset, ShareModelFitter learns the whole curve: it fits
//
//     latency_q(share) = work_eff / share + offset
//
// by recursive least squares over observed (enacted share, measured
// latency-percentile) pairs, with exponential forgetting so drifting
// systems keep adapting.  The fitted curve is installed into the
// LatencyModel as a CorrectedWcetLagShare(work_eff, 0, offset) — exactly
// the family the optimizer already knows how to invert in closed form.
//
// A fit requires diversity: at least `min_samples` observations whose
// 1/share values span a minimal relative spread (a constant-share history
// cannot identify two parameters); until then the subtask's model is left
// untouched.
#pragma once

#include <vector>

#include "common/stats.h"
#include "model/latency_model.h"
#include "model/workload.h"

namespace lla::correction {

struct FitterConfig {
  /// Percentile of the measured latency used as the regression target.
  double percentile = 0.95;
  /// Exponential forgetting factor per observation window (1 = remember
  /// everything).
  double forgetting = 0.98;
  std::size_t min_samples = 3;
  /// Required relative spread of 1/share across remembered observations.
  double min_regressor_spread = 0.05;
  /// Observation windows with fewer latency samples than this are skipped.
  std::size_t min_window_samples = 20;
  /// Fitted work must stay positive and within sanity bounds relative to
  /// the nominal (wcet + lag); otherwise the fit is rejected this round.
  double max_work_ratio = 4.0;
};

class ShareModelFitter {
 public:
  struct Fit {
    double work_ms = 0.0;    ///< fitted numerator (effective work)
    double offset_ms = 0.0;  ///< fitted additive term
    bool valid = false;      ///< installed into the model?
    std::size_t observations = 0;
  };

  /// `model` must outlive the fitter; fitted curves are installed into it.
  ShareModelFitter(const Workload& workload, LatencyModel* model,
                   FitterConfig config = {});

  /// Feeds one observation window (same contract as ErrorCorrector).
  void Observe(const std::vector<SampleQuantile>& measured,
               const std::vector<double>& enacted_shares);

  Fit fit(SubtaskId id) const { return fits_[id.value()]; }

  /// Forgets all state and restores the nominal model.
  void Reset();

 private:
  struct RlsState {
    // Normal equations with forgetting for y = theta1 * x + theta2,
    // x = 1/share, y = measured latency percentile.
    double sxx = 0.0, sx1 = 0.0, s11 = 0.0;  ///< weighted moments
    double sxy = 0.0, s1y = 0.0;
    double x_min = 0.0, x_max = 0.0;
    std::size_t count = 0;
  };

  void TryInstall(SubtaskId id);

  const Workload* workload_;
  LatencyModel* model_;
  FitterConfig config_;
  std::vector<RlsState> states_;
  std::vector<Fit> fits_;
};

}  // namespace lla::correction
