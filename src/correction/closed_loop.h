// ClosedLoop: the full feedback system of the paper's Sec. 6 experiment.
//
// Epoch structure (one epoch ~ one observation interval of the prototype):
//   1. run the optimizer to convergence on the current (possibly corrected)
//      latency model and enact the resulting shares;
//   2. execute the workload on the discrete-event substrate under those
//      shares for `epoch_ms`, collecting latency samples;
//   3. if correction is enabled this epoch, feed the samples to the
//      ErrorCorrector, which updates the model the optimizer sees next.
//
// Correction can be enabled at a configurable epoch, reproducing Figure 8's
// before/after structure: uncorrected shares first, then the optimizer
// discovering it can meet the fast tasks' deadline with their sustainable
// minimum share and reassigning the surplus to the slow tasks.
#pragma once

#include <vector>

#include "core/engine.h"
#include "correction/error_corrector.h"
#include "correction/model_fitter.h"
#include "model/latency_model.h"
#include "model/workload.h"
#include "sim/system_sim.h"

namespace lla::correction {

/// Which online model-improvement strategy the loop applies (Sec. 6.3 uses
/// the additive corrector; the RLS fitter is the "model constructed
/// on-line" extension).
enum class CorrectionMode { kAdditive, kFitted };

struct ClosedLoopConfig {
  LlaConfig lla;
  sim::SimConfig sim;
  CorrectionConfig correction;
  FitterConfig fitter;
  CorrectionMode mode = CorrectionMode::kAdditive;
  int epochs = 20;
  /// Epoch index at which correction turns on (epochs before it reproduce
  /// the uncorrected phase); negative disables correction entirely.
  int enable_correction_at_epoch = 5;
  int optimizer_iterations_per_epoch = 4000;
};

struct EpochRecord {
  int epoch = 0;
  bool correction_active = false;
  /// Enacted shares per subtask (model share at the optimizer's latencies).
  std::vector<double> shares;
  /// Smoothed additive error per subtask.
  std::vector<double> errors_ms;
  /// Measured latency percentile per subtask (the corrector's input).
  std::vector<double> measured_ms;
  /// Model-predicted latency per subtask (optimizer's assignment).
  std::vector<double> predicted_ms;
  double optimizer_utility = 0.0;
  bool optimizer_converged = false;
  std::uint64_t job_sets_completed = 0;
};

class ClosedLoop {
 public:
  ClosedLoop(const Workload& workload, ClosedLoopConfig config = {});

  /// Runs all epochs and returns one record per epoch.
  std::vector<EpochRecord> Run();

  const LatencyModel& model() const { return model_; }

 private:
  const Workload* workload_;
  ClosedLoopConfig config_;
  LatencyModel model_;
};

}  // namespace lla::correction
