#include "correction/percentile_plan.h"

#include <algorithm>
#include <cassert>

#include "model/percentile.h"

namespace lla::correction {

std::vector<double> PlanSubtaskPercentiles(
    const Workload& workload, const std::vector<double>& task_targets) {
  assert(task_targets.size() == workload.task_count());
  std::vector<int> max_hops(workload.subtask_count(), 1);
  for (const PathInfo& path : workload.paths()) {
    const int hops = static_cast<int>(path.subtasks.size());
    for (SubtaskId sid : path.subtasks) {
      max_hops[sid.value()] = std::max(max_hops[sid.value()], hops);
    }
  }
  std::vector<double> percentiles(workload.subtask_count(), 0.0);
  for (const SubtaskInfo& sub : workload.subtasks()) {
    const double target = task_targets[sub.task.value()];
    assert(target > 0.0 && target < 1.0);
    percentiles[sub.id.value()] =
        PerSubtaskPercentile(target, max_hops[sub.id.value()]);
  }
  return percentiles;
}

std::vector<double> PlanSubtaskPercentiles(const Workload& workload,
                                           double target) {
  return PlanSubtaskPercentiles(
      workload, std::vector<double>(workload.task_count(), target));
}

}  // namespace lla::correction
