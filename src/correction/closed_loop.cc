#include "correction/closed_loop.h"

#include <cassert>

namespace lla::correction {

ClosedLoop::ClosedLoop(const Workload& workload, ClosedLoopConfig config)
    : workload_(&workload), config_(config), model_(workload) {
  assert(config.epochs >= 1);
}

std::vector<EpochRecord> ClosedLoop::Run() {
  const Workload& w = *workload_;
  LlaEngine engine(w, model_, config_.lla);
  ErrorCorrector corrector(w, &model_, config_.correction);
  ShareModelFitter fitter(w, &model_, config_.fitter);
  sim::SystemSimulator simulator(w, config_.sim);

  std::vector<EpochRecord> records;
  records.reserve(config_.epochs);

  for (int epoch = 0; epoch < config_.epochs; ++epoch) {
    EpochRecord record;
    record.epoch = epoch;
    record.correction_active =
        config_.enable_correction_at_epoch >= 0 &&
        epoch >= config_.enable_correction_at_epoch;

    // 1. Optimize on the current model and enact.  The engine keeps its
    // price state across epochs, mirroring the continuously-running
    // optimizer of Sec. 4.4 (model updates shift its fixed point).
    const RunResult run = engine.Run(config_.optimizer_iterations_per_epoch);
    record.optimizer_utility = run.final_utility;
    record.optimizer_converged = run.converged;

    record.predicted_ms = engine.latencies();
    record.shares.resize(w.subtask_count());
    for (const SubtaskInfo& sub : w.subtasks()) {
      record.shares[sub.id.value()] = model_.share(sub.id).Share(
          engine.latencies()[sub.id.value()]);
    }

    // 2. Execute on the substrate under the enacted shares.
    sim::SimConfig sim_config = config_.sim;
    sim_config.seed = config_.sim.seed + static_cast<std::uint64_t>(epoch);
    sim::SystemSimulator epoch_sim(w, sim_config);
    const sim::SimResult sim_result = epoch_sim.Run(record.shares);
    record.job_sets_completed = sim_result.job_sets_completed;
    record.measured_ms.resize(w.subtask_count());
    for (std::size_t s = 0; s < w.subtask_count(); ++s) {
      record.measured_ms[s] =
          sim_result.subtask_latencies[s].Value(config_.correction.percentile);
    }

    // 3. Feed the corrector (the model the engine reads mutates here).
    if (record.correction_active) {
      if (config_.mode == CorrectionMode::kAdditive) {
        corrector.Observe(sim_result.subtask_latencies, record.shares);
      } else {
        // Fitted mode: the RLS needs share diversity to identify two
        // parameters, but under a constant model the optimizer re-enacts
        // the same shares forever.  The additive corrector bootstraps the
        // loop (its first update moves the shares); once a subtask's fit
        // becomes valid it overrides the additive model (installed second).
        corrector.Observe(sim_result.subtask_latencies, record.shares);
        fitter.Observe(sim_result.subtask_latencies, record.shares);
      }
      // A model change invalidates the engine's convergence window: force
      // it to re-evaluate (warm-started from its current prices) rather
      // than believing it is still settled.
      engine.ClearConvergenceWindow();
    }
    record.errors_ms.resize(w.subtask_count());
    for (const SubtaskInfo& sub : w.subtasks()) {
      record.errors_ms[sub.id.value()] =
          config_.mode == CorrectionMode::kFitted &&
                  fitter.fit(sub.id).valid
              ? fitter.fit(sub.id).offset_ms
              : corrector.error(sub.id);
    }

    records.push_back(std::move(record));
  }
  return records;
}

}  // namespace lla::correction
