// Per-subtask percentile planning (paper Sec. 2.1).
//
// When a task's SLA is stated on the p-th percentile of its end-to-end
// latency, per-subtask budgets must be held at the tighter per-subtask
// percentile q = p^(1/n) for an n-hop path.  For a subtask on several
// paths the longest one dominates (q grows with n), so the planner assigns
// each subtask q_s = p_i^(1 / max hops through s).
//
// The output plugs directly into the measurement side: ErrorCorrector and
// ShareModelFitter accept per-subtask percentiles, so the model is
// corrected against exactly the quantile the SLA math requires.
#pragma once

#include <vector>

#include "model/workload.h"

namespace lla::correction {

/// `task_targets[t]` is task t's end-to-end percentile target in (0, 1).
/// Returns the per-subtask percentile (fraction) per SubtaskId.
std::vector<double> PlanSubtaskPercentiles(
    const Workload& workload, const std::vector<double>& task_targets);

/// Convenience: the same end-to-end target for every task.
std::vector<double> PlanSubtaskPercentiles(const Workload& workload,
                                           double target);

}  // namespace lla::correction
