#include "correction/error_corrector.h"

#include <algorithm>
#include <cassert>

namespace lla::correction {

ErrorCorrector::ErrorCorrector(const Workload& workload, LatencyModel* model,
                               CorrectionConfig config)
    : workload_(&workload), model_(model), config_(config) {
  assert(model != nullptr);
  assert(config.percentile > 0.0 && config.percentile < 1.0);
  assert(config.clamp_margin > 0.0 && config.clamp_margin < 1.0);
  assert(config.per_subtask_percentiles.empty() ||
         config.per_subtask_percentiles.size() == workload.subtask_count());
  smoothers_.assign(workload.subtask_count(),
                    ExponentialSmoother(config.alpha));
}

void ErrorCorrector::Observe(const std::vector<SampleQuantile>& measured,
                             const std::vector<double>& enacted_shares) {
  assert(measured.size() == workload_->subtask_count());
  assert(enacted_shares.size() == workload_->subtask_count());
  for (const SubtaskInfo& sub : workload_->subtasks()) {
    const std::size_t s = sub.id.value();
    if (measured[s].count() < config_.min_samples) continue;
    const double share = enacted_shares[s];
    if (share <= 0.0) continue;

    // Base (uncorrected) model prediction at the enacted share.
    const double predicted = sub.work_ms / share;
    const double percentile = config_.per_subtask_percentiles.empty()
                                  ? config_.percentile
                                  : config_.per_subtask_percentiles[s];
    const double observed = measured[s].Value(percentile);
    const double raw_error = observed - predicted;
    // Keep the corrected latency floor positive.
    const double clamped = std::max(
        raw_error, -(1.0 - config_.clamp_margin) * predicted);
    const double smoothed = smoothers_[s].Add(clamped);
    model_->SetAdditiveError(sub.id, smoothed);
  }
}

void ErrorCorrector::Reset() {
  for (auto& smoother : smoothers_) smoother.Reset();
  for (const SubtaskInfo& sub : workload_->subtasks()) {
    model_->SetAdditiveError(sub.id, 0.0);
  }
}

}  // namespace lla::correction
