#include "solver/barrier.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>

#include "common/math.h"
#include "solver/phase1.h"

namespace lla {
namespace {
constexpr double kBoxMargin = 1e-9;
}

BarrierSolver::BarrierSolver(const Workload& workload,
                             const LatencyModel& model,
                             BarrierSolverConfig config)
    : workload_(&workload), model_(&model), config_(config) {
  lo_.resize(workload.subtask_count());
  hi_.resize(workload.subtask_count());
  for (const SubtaskInfo& sub : workload.subtasks()) {
    const ShareFunction& share = model.share(sub.id);
    const double cap = workload.resource(sub.resource).capacity;
    const double floor =
        std::max(share.MinLatency() * (1.0 + 1e-12) + 1e-12, 1e-9);
    lo_[sub.id.value()] = std::max(share.LatencyForShare(cap), floor);
    const double critical = workload.task(sub.task).critical_time_ms;
    double hi = sub.min_share > 0.0
                    ? share.LatencyForShare(sub.min_share)
                    : config.lat_cap_factor * critical;
    hi_[sub.id.value()] = std::max(hi, lo_[sub.id.value()]);
  }
}

bool BarrierSolver::StrictlyFeasible(const Assignment& lat) const {
  for (const ResourceInfo& resource : workload_->resources()) {
    const double sum =
        ResourceShareSum(*workload_, *model_, resource.id, lat);
    if (sum >= resource.capacity) return false;
  }
  for (const PathInfo& path : workload_->paths()) {
    if (PathLatency(*workload_, path.id, lat) >= path.critical_time_ms) {
      return false;
    }
  }
  return true;
}

Expected<Assignment> BarrierSolver::FindInteriorPoint() const {
  // Equal-split witness scaled up: latencies lambda * base have shares
  // shrinking like 1/lambda and path latencies growing like lambda.
  Assignment base(workload_->subtask_count(), 0.0);
  for (const ResourceInfo& resource : workload_->resources()) {
    const double n_r = static_cast<double>(resource.subtasks.size());
    for (SubtaskId sid : resource.subtasks) {
      const double share = resource.capacity / n_r;
      base[sid.value()] = model_->share(sid).LatencyForShare(share);
    }
  }
  double lambda_max = std::numeric_limits<double>::infinity();
  for (const PathInfo& path : workload_->paths()) {
    const double latency = PathLatency(*workload_, path.id, base);
    lambda_max = std::min(lambda_max, path.critical_time_ms / latency);
  }
  // Candidate scale factors between "just above equal-split" and "just
  // below the deadline wall".
  const double candidates[] = {std::sqrt(std::max(lambda_max, 1.0)),
                               0.5 * (1.0 + lambda_max), 1.05, 1.2,
                               0.9 * lambda_max};
  for (double lambda : candidates) {
    if (!(lambda > 1.0) || lambda >= lambda_max) continue;
    Assignment candidate(base.size());
    for (std::size_t s = 0; s < base.size(); ++s) {
      candidate[s] = Clamp(lambda * base[s], lo_[s] + kBoxMargin,
                           std::max(lo_[s] + kBoxMargin, hi_[s] - kBoxMargin));
    }
    if (StrictlyFeasible(candidate)) return candidate;
  }

  // Scaling the equal-split witness failed (typical for workloads parked
  // exactly at capacity, like the Table 1 instance): fall back to the
  // Phase-I solver, which minimizes the smoothed maximum violation.
  Phase1Config phase1_config;
  phase1_config.lat_cap_factor = config_.lat_cap_factor;
  Phase1Solver phase1(*workload_, *model_, phase1_config);
  const Phase1Result result = phase1.Solve();
  if (result.strictly_feasible && StrictlyFeasible(result.latencies)) {
    return result.latencies;
  }
  return Expected<Assignment>::Error(
      "BarrierSolver: no strictly feasible interior point found (workload "
      "is at or over capacity; Phase-I residual " +
      std::to_string(result.max_violation) + ")");
}

double BarrierSolver::Objective(const Assignment& lat, double t) const {
  double value = TotalUtility(*workload_, lat, config_.variant);
  for (const ResourceInfo& resource : workload_->resources()) {
    const double slack =
        resource.capacity -
        ResourceShareSum(*workload_, *model_, resource.id, lat);
    if (slack <= 0.0) return -std::numeric_limits<double>::infinity();
    value += std::log(slack) / t;
  }
  for (const PathInfo& path : workload_->paths()) {
    const double slack =
        path.critical_time_ms - PathLatency(*workload_, path.id, lat);
    if (slack <= 0.0) return -std::numeric_limits<double>::infinity();
    value += std::log(slack) / t;
  }
  return value;
}

void BarrierSolver::Gradient(const Assignment& lat, double t,
                             Assignment* grad) const {
  grad->assign(lat.size(), 0.0);

  // Utility term: w_s * f_i'(X_i).
  for (const TaskInfo& task : workload_->tasks()) {
    double x = 0.0;
    for (SubtaskId sid : task.subtasks) {
      x += workload_->Weight(sid, config_.variant) * lat[sid.value()];
    }
    const double slope = task.utility->Derivative(x);
    for (SubtaskId sid : task.subtasks) {
      (*grad)[sid.value()] +=
          workload_->Weight(sid, config_.variant) * slope;
    }
  }

  // Resource barrier: d/dlat log(B - S) = -share'(lat) / slack (>= 0).
  for (const ResourceInfo& resource : workload_->resources()) {
    const double slack =
        resource.capacity -
        ResourceShareSum(*workload_, *model_, resource.id, lat);
    assert(slack > 0.0);
    for (SubtaskId sid : resource.subtasks) {
      const double dshare = model_->share(sid).DShareDLat(lat[sid.value()]);
      (*grad)[sid.value()] += (-dshare / slack) / t;
    }
  }

  // Path barrier: d/dlat log(C - sum lat) = -1 / slack.
  for (const PathInfo& path : workload_->paths()) {
    const double slack =
        path.critical_time_ms - PathLatency(*workload_, path.id, lat);
    assert(slack > 0.0);
    for (SubtaskId sid : path.subtasks) {
      (*grad)[sid.value()] -= (1.0 / slack) / t;
    }
  }
}

Expected<BarrierResult> BarrierSolver::Solve() const {
  auto start = FindInteriorPoint();
  if (!start.ok()) return Expected<BarrierResult>::Error(start.error());
  return SolveFrom(start.value());
}

Expected<BarrierResult> BarrierSolver::SolveFrom(
    const Assignment& start) const {
  if (start.size() != workload_->subtask_count()) {
    return Expected<BarrierResult>::Error(
        "BarrierSolver: start has wrong size");
  }
  if (!StrictlyFeasible(start)) {
    return Expected<BarrierResult>::Error(
        "BarrierSolver: start is not strictly feasible");
  }

  BarrierResult result;
  Assignment lat = start;
  Assignment grad(lat.size()), trial(lat.size());

  for (double t = config_.t0; t <= config_.t_max; t *= config_.t_growth) {
    for (int step = 0; step < config_.max_gradient_steps_per_stage; ++step) {
      Gradient(lat, t, &grad);
      const double base_value = Objective(lat, t);

      // Projected-gradient stationarity measure on the box.
      double stationarity = 0.0;
      for (std::size_t s = 0; s < lat.size(); ++s) {
        double g = grad[s];
        if (lat[s] <= lo_[s] + kBoxMargin && g < 0.0) g = 0.0;
        if (lat[s] >= hi_[s] - kBoxMargin && g > 0.0) g = 0.0;
        stationarity = std::max(stationarity, std::fabs(g));
      }
      if (stationarity <= config_.gradient_tol) break;
      ++result.total_gradient_steps;

      // Backtracking line search along the projected gradient arc.
      double alpha = 1.0;
      bool accepted = false;
      for (int bt = 0; bt < 60; ++bt) {
        for (std::size_t s = 0; s < lat.size(); ++s) {
          trial[s] = Clamp(lat[s] + alpha * grad[s], lo_[s] + kBoxMargin,
                           std::max(lo_[s] + kBoxMargin,
                                    hi_[s] - kBoxMargin));
        }
        const double trial_value = Objective(trial, t);
        if (trial_value > base_value + 1e-18) {
          lat = trial;
          accepted = true;
          break;
        }
        alpha *= 0.5;
      }
      if (!accepted) break;  // at numerical stationarity for this stage
    }
  }

  result.latencies = lat;
  result.utility = TotalUtility(*workload_, lat, config_.variant);
  result.converged = true;
  return result;
}

}  // namespace lla
