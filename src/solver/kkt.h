// KKT condition checker for the latency-assignment problem.
//
// At the optimum of Eqs. 2-4 there exist prices (mu, lambda) such that:
//   stationarity:  w_s f_i'(X_i) - Lambda_s - mu_r share_s'(lat_s) = 0
//                  (relaxed to an inequality at a box bound),
//   primal feasibility:  Eq. 3 and Eq. 4 hold,
//   dual feasibility:    mu, lambda >= 0,
//   complementary slackness:  mu_r * slack_r = 0,  lambda_p * slack_p = 0.
//
// Tests use this to certify that LLA's iterates converge to a true optimum
// and that the engine's prices are meaningful duals.
#pragma once

#include <string>

#include "core/latency_solver.h"
#include "core/prices.h"
#include "model/evaluation.h"
#include "model/latency_model.h"
#include "model/workload.h"

namespace lla {

struct KktReport {
  double max_stationarity_violation = 0.0;
  double max_primal_violation = 0.0;        ///< constraint excess (abs terms)
  double max_dual_violation = 0.0;          ///< negative price magnitude
  double max_complementarity_violation = 0.0;
  bool Satisfied(double tol) const {
    return max_stationarity_violation <= tol &&
           max_primal_violation <= tol && max_dual_violation <= tol &&
           max_complementarity_violation <= tol;
  }
  std::string Summary() const;
};

/// Evaluates the KKT residuals of (latencies, prices).  `solver` supplies
/// the same box bounds the engine used, so stationarity at a clamped
/// latency is judged by the sign of the Lagrangian derivative instead.
KktReport CheckKkt(const Workload& workload, const LatencyModel& model,
                   const LatencySolver& solver, const Assignment& latencies,
                   const PriceVector& prices, UtilityVariant variant);

}  // namespace lla
