#include "solver/phase1.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>

#include "common/math.h"

namespace lla {
namespace {
constexpr double kBoxMargin = 1e-9;
}

Phase1Solver::Phase1Solver(const Workload& workload, const LatencyModel& model,
                           Phase1Config config)
    : workload_(&workload), model_(&model), config_(config) {
  lo_.resize(workload.subtask_count());
  hi_.resize(workload.subtask_count());
  for (const SubtaskInfo& sub : workload.subtasks()) {
    const ShareFunction& share = model.share(sub.id);
    const double cap = workload.resource(sub.resource).capacity;
    const double floor =
        std::max(share.MinLatency() * (1.0 + 1e-12) + 1e-12, 1e-9);
    lo_[sub.id.value()] = std::max(share.LatencyForShare(cap), floor);
    const double critical = workload.task(sub.task).critical_time_ms;
    const double hi = sub.min_share > 0.0
                          ? share.LatencyForShare(sub.min_share)
                          : config.lat_cap_factor * critical;
    hi_[sub.id.value()] = std::max(hi, lo_[sub.id.value()]);
  }
}

double Phase1Solver::MaxViolation(const Assignment& lat) const {
  double worst = -std::numeric_limits<double>::infinity();
  for (const ResourceInfo& resource : workload_->resources()) {
    worst = std::max(worst,
                     ResourceShareSum(*workload_, *model_, resource.id, lat) -
                         resource.capacity);
  }
  for (const PathInfo& path : workload_->paths()) {
    worst = std::max(worst, (PathLatency(*workload_, path.id, lat) -
                             path.critical_time_ms) /
                                path.critical_time_ms);
  }
  return worst;
}

double Phase1Solver::SmoothedMax(const Assignment& lat, double t) const {
  // Collect all constraint values, then log-sum-exp with max subtracted.
  double peak = -std::numeric_limits<double>::infinity();
  std::vector<double> values;
  values.reserve(workload_->resource_count() + workload_->path_count());
  for (const ResourceInfo& resource : workload_->resources()) {
    values.push_back(
        ResourceShareSum(*workload_, *model_, resource.id, lat) -
        resource.capacity);
  }
  for (const PathInfo& path : workload_->paths()) {
    values.push_back((PathLatency(*workload_, path.id, lat) -
                      path.critical_time_ms) /
                     path.critical_time_ms);
  }
  for (double v : values) peak = std::max(peak, v);
  double sum = 0.0;
  for (double v : values) sum += std::exp(t * (v - peak));
  return peak + std::log(sum) / t;
}

void Phase1Solver::Gradient(const Assignment& lat, double t,
                            Assignment* grad) const {
  grad->assign(lat.size(), 0.0);
  // Two passes: first compute constraint values for the softmax weights.
  const std::size_t num_resources = workload_->resource_count();
  std::vector<double> values(num_resources + workload_->path_count());
  for (const ResourceInfo& resource : workload_->resources()) {
    values[resource.id.value()] =
        ResourceShareSum(*workload_, *model_, resource.id, lat) -
        resource.capacity;
  }
  for (const PathInfo& path : workload_->paths()) {
    values[num_resources + path.id.value()] =
        (PathLatency(*workload_, path.id, lat) - path.critical_time_ms) /
        path.critical_time_ms;
  }
  double peak = -std::numeric_limits<double>::infinity();
  for (double v : values) peak = std::max(peak, v);
  double z = 0.0;
  for (double v : values) z += std::exp(t * (v - peak));

  for (const ResourceInfo& resource : workload_->resources()) {
    const double weight =
        std::exp(t * (values[resource.id.value()] - peak)) / z;
    if (weight <= 0.0) continue;
    for (SubtaskId sid : resource.subtasks) {
      (*grad)[sid.value()] +=
          weight * model_->share(sid).DShareDLat(lat[sid.value()]);
    }
  }
  for (const PathInfo& path : workload_->paths()) {
    const double weight =
        std::exp(t * (values[num_resources + path.id.value()] - peak)) / z;
    if (weight <= 0.0) continue;
    for (SubtaskId sid : path.subtasks) {
      (*grad)[sid.value()] += weight / path.critical_time_ms;
    }
  }
}

Phase1Result Phase1Solver::Solve() const {
  // Equal-split witness as the start.
  Assignment start(workload_->subtask_count(), 0.0);
  for (const ResourceInfo& resource : workload_->resources()) {
    const double n_r = static_cast<double>(resource.subtasks.size());
    for (SubtaskId sid : resource.subtasks) {
      start[sid.value()] = Clamp(
          model_->share(sid).LatencyForShare(resource.capacity / n_r),
          lo_[sid.value()] + kBoxMargin,
          std::max(lo_[sid.value()] + kBoxMargin,
                   hi_[sid.value()] - kBoxMargin));
    }
  }
  return SolveFrom(start);
}

Phase1Result Phase1Solver::SolveFrom(const Assignment& start) const {
  assert(start.size() == workload_->subtask_count());
  Phase1Result result;
  Assignment lat = start;
  Assignment grad(lat.size()), trial(lat.size());

  for (double t = config_.t0; t <= config_.t_max; t *= config_.t_growth) {
    for (int step = 0; step < config_.max_gradient_steps_per_stage; ++step) {
      if (MaxViolation(lat) < -config_.target_margin) break;  // done early
      Gradient(lat, t, &grad);
      const double base = SmoothedMax(lat, t);

      double stationarity = 0.0;
      for (std::size_t s = 0; s < lat.size(); ++s) {
        double g = grad[s];
        if (lat[s] <= lo_[s] + kBoxMargin && g > 0.0) g = 0.0;
        if (lat[s] >= hi_[s] - kBoxMargin && g < 0.0) g = 0.0;
        stationarity = std::max(stationarity, std::fabs(g));
      }
      if (stationarity <= config_.gradient_tol) break;
      ++result.total_gradient_steps;

      double alpha = 1.0;
      bool accepted = false;
      for (int bt = 0; bt < 60; ++bt) {
        for (std::size_t s = 0; s < lat.size(); ++s) {
          trial[s] = Clamp(lat[s] - alpha * grad[s], lo_[s] + kBoxMargin,
                           std::max(lo_[s] + kBoxMargin,
                                    hi_[s] - kBoxMargin));
        }
        if (SmoothedMax(trial, t) < base - 1e-18) {
          lat = trial;
          accepted = true;
          break;
        }
        alpha *= 0.5;
      }
      if (!accepted) break;
    }
    if (MaxViolation(lat) < -config_.target_margin) break;
  }

  result.latencies = lat;
  result.max_violation = MaxViolation(lat);
  result.strictly_feasible = result.max_violation < 0.0;
  return result;
}

}  // namespace lla
