// Phase-I feasibility solver: finds a strictly interior point of the
// constraint set (Eqs. 3-4), or certifies that none exists within numeric
// tolerance.
//
// Minimizes the smoothed maximum constraint violation
//
//   phi_t(lat) = (1/t) log( sum_r exp(t * g_r(lat)) + sum_p exp(t * g_p(lat)) )
//   g_r = share sum - B_r   (resource excess)
//   g_p = (path latency - C_i) / C_i   (normalized deadline excess)
//
// by projected gradient descent with backtracking, sharpening t on a
// schedule.  phi_t is convex (log-sum-exp of convex functions) and upper
// bounds max g within log(m)/t, so phi_t < -margin certifies strict
// feasibility.  This serves two roles:
//   * an interior starting point for BarrierSolver on workloads where the
//     equal-split scaling witness fails (e.g. the exactly-at-capacity
//     Table 1 workload);
//   * an optimizer-independent schedulability check to cross-validate
//     SchedulabilityTester.
#pragma once

#include "common/expected.h"
#include "model/evaluation.h"
#include "model/latency_model.h"
#include "model/workload.h"

namespace lla {

struct Phase1Config {
  double t0 = 2.0;
  double t_growth = 4.0;
  double t_max = 4096.0;
  int max_gradient_steps_per_stage = 2000;
  double gradient_tol = 1e-9;
  /// Stop as soon as the true max violation is below -margin (strictly
  /// interior by at least this much, in normalized units).
  double target_margin = 1e-4;
  double lat_cap_factor = 10.0;
};

struct Phase1Result {
  Assignment latencies;
  /// max over constraints of the normalized violation at `latencies`;
  /// negative = strictly feasible.
  double max_violation = 0.0;
  bool strictly_feasible = false;
  int total_gradient_steps = 0;
};

class Phase1Solver {
 public:
  Phase1Solver(const Workload& workload, const LatencyModel& model,
               Phase1Config config = {});

  /// Runs from the equal-split witness (or a caller-supplied start).
  Phase1Result Solve() const;
  Phase1Result SolveFrom(const Assignment& start) const;

 private:
  double MaxViolation(const Assignment& lat) const;
  double SmoothedMax(const Assignment& lat, double t) const;
  void Gradient(const Assignment& lat, double t, Assignment* grad) const;

  const Workload* workload_;
  const LatencyModel* model_;
  Phase1Config config_;
  Assignment lo_;
  Assignment hi_;
};

}  // namespace lla
