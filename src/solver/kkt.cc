#include "solver/kkt.h"

#include <algorithm>
#include <cmath>
#include <sstream>

namespace lla {

std::string KktReport::Summary() const {
  std::ostringstream os;
  os << "stationarity=" << max_stationarity_violation
     << " primal=" << max_primal_violation << " dual=" << max_dual_violation
     << " complementarity=" << max_complementarity_violation;
  return os.str();
}

KktReport CheckKkt(const Workload& workload, const LatencyModel& model,
                   const LatencySolver& solver, const Assignment& latencies,
                   const PriceVector& prices, UtilityVariant variant) {
  KktReport report;

  // Dual feasibility.
  for (double mu : prices.mu) {
    report.max_dual_violation = std::max(report.max_dual_violation, -mu);
  }
  for (double lambda : prices.lambda) {
    report.max_dual_violation = std::max(report.max_dual_violation, -lambda);
  }

  // Primal feasibility + complementary slackness (resources).
  for (const ResourceInfo& resource : workload.resources()) {
    const double sum =
        ResourceShareSum(workload, model, resource.id, latencies);
    const double excess = sum - resource.capacity;
    report.max_primal_violation =
        std::max(report.max_primal_violation, excess);
    const double slack = std::max(0.0, -excess);
    report.max_complementarity_violation =
        std::max(report.max_complementarity_violation,
                 prices.mu[resource.id.value()] * slack);
  }

  // Primal feasibility + complementary slackness (paths); normalized by the
  // critical time like the price update (Eq. 9).
  for (const PathInfo& path : workload.paths()) {
    const double latency = PathLatency(workload, path.id, latencies);
    const double excess =
        (latency - path.critical_time_ms) / path.critical_time_ms;
    report.max_primal_violation =
        std::max(report.max_primal_violation, excess);
    const double slack = std::max(0.0, -excess);
    report.max_complementarity_violation =
        std::max(report.max_complementarity_violation,
                 prices.lambda[path.id.value()] * slack);
  }

  // Stationarity.  At an interior latency the Lagrangian derivative must
  // vanish; at the lower (upper) box bound it may be negative (positive) —
  // i.e. the unconstrained optimum lies beyond the bound.
  for (const TaskInfo& task : workload.tasks()) {
    double x = 0.0;
    for (SubtaskId sid : task.subtasks) {
      x += workload.Weight(sid, variant) * latencies[sid.value()];
    }
    const double slope = task.utility->Derivative(x);
    for (SubtaskId sid : task.subtasks) {
      const SubtaskInfo& sub = workload.subtask(sid);
      const double w = workload.Weight(sid, variant);
      const double lambda_sum = prices.PathPriceSum(workload, sid);
      const double mu = prices.mu[sub.resource.value()];
      const double lat = latencies[sid.value()];
      const double dlagrangian =
          w * slope - lambda_sum -
          mu * model.share(sid).DShareDLat(lat);

      const double lo = solver.LatLo(sid);
      const double hi = solver.LatHi(sid);
      const double span = std::max(hi - lo, 1e-12);
      double violation;
      if (lat <= lo + 1e-6 * span) {
        violation = std::max(0.0, dlagrangian);  // must not want to shrink
      } else if (lat >= hi - 1e-6 * span) {
        violation = std::max(0.0, -dlagrangian);  // must not want to grow
      } else {
        violation = std::fabs(dlagrangian);
      }
      report.max_stationarity_violation =
          std::max(report.max_stationarity_violation, violation);
    }
  }

  report.max_primal_violation = std::max(report.max_primal_violation, 0.0);
  return report;
}

}  // namespace lla
