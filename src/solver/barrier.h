// Centralized reference solver: log-barrier interior-point method.
//
// Maximizes  Phi_t(lat) = U(lat) + (1/t) [ sum_r log(B_r - share sum)
//                                        + sum_p log(C_i - path latency) ]
// by projected gradient ascent with Armijo backtracking, increasing t
// geometrically.  Phi_t is concave (U concave; resource slacks concave since
// shares are convex; path slacks affine), so the central path converges to
// the optimum of the paper's problem (Eqs. 2-4) with duality gap m/t.
//
// This is deliberately a *different* method from LLA's dual decomposition:
// tests and benches use it as the independent "optimal" yardstick.
#pragma once

#include "common/expected.h"
#include "model/evaluation.h"
#include "model/latency_model.h"
#include "model/workload.h"

namespace lla {

struct BarrierSolverConfig {
  UtilityVariant variant = UtilityVariant::kPathWeighted;
  double t0 = 1.0;
  double t_growth = 8.0;
  double t_max = 1e8;
  int max_gradient_steps_per_stage = 4000;
  double gradient_tol = 1e-8;
  /// Box upper bound when no min_share floor: factor * critical time.
  double lat_cap_factor = 10.0;
};

struct BarrierResult {
  Assignment latencies;
  double utility = 0.0;
  bool converged = false;
  int total_gradient_steps = 0;
};

class BarrierSolver {
 public:
  BarrierSolver(const Workload& workload, const LatencyModel& model,
                BarrierSolverConfig config = {});

  /// Solves from an automatically constructed strictly feasible start.
  /// Fails if no strictly interior point can be found (workload at or over
  /// capacity).
  Expected<BarrierResult> Solve() const;

  /// Solves from the given strictly feasible start (checked).
  Expected<BarrierResult> SolveFrom(const Assignment& start) const;

  /// A strictly feasible interior point, if one can be constructed by
  /// scaling the equal-split witness.
  Expected<Assignment> FindInteriorPoint() const;

 private:
  double Objective(const Assignment& lat, double t) const;
  void Gradient(const Assignment& lat, double t, Assignment* grad) const;
  bool StrictlyFeasible(const Assignment& lat) const;

  const Workload* workload_;
  const LatencyModel* model_;
  BarrierSolverConfig config_;
  Assignment lo_;  ///< per-subtask box bounds
  Assignment hi_;
};

}  // namespace lla
