// Wire messages of the distributed LLA protocol (paper Sec. 4.1).
//
// Four message kinds circulate:
//   LatencyUpdate      controller -> resource: the new predicted latencies of
//                      the controller's subtasks hosted on that resource
//                      (the input to the resource's price computation).
//   ResourcePriceUpdate resource -> controller: the resource's new price mu_r.
//   RepairRequest      restarted resource -> controller: "I lost my state;
//                      send me yours" (crash-restart recovery, DESIGN.md
//                      §7.7).
//   RepairResponse     controller -> resource: absolute state — the
//                      controller's cached mu_r (with its epoch) plus the
//                      latencies of its subtasks hosted on that resource, so
//                      the resource can rebuild both halves of its price
//                      computation without waiting a full gossip round.
//
// The sharded deployment (DESIGN.md §7.10) batches these into one message
// per (task, shard) pair.  Since PR 9 the shard messages are *positional*
// (DESIGN.md §7.11): shard membership is static, so both sides derive the
// same ordered per-(shard, client) entry list once at bind time and the
// wire carries only a count plus a b1-encoded value array — no resource or
// subtask ids.  The encoded bytes live in an arena built once per round and
// each message holds a WireSlice into it, so a batched update is encoded
// once and sliced per client instead of copied per message.
//
// Path prices never travel: each controller owns its task's paths and
// computes lambda_p locally (Sec. 4.3).  Every Message additionally carries
// the sender's incarnation number, stamped by the bus at Send time: a
// restarted endpoint bumps its incarnation, which lets receivers discard
// price messages that were in flight (or queued by stale epochs) from
// before the crash.  Messages are serialized to a binary wire format so the
// bus can account for bytes and tests can verify round-tripping.
#pragma once

#include <cstdint>
#include <cstring>
#include <memory>
#include <optional>
#include <string>
#include <variant>
#include <vector>

#include "common/ids.h"

namespace lla::net {

/// A view into a shared, immutable arena of encoded payload bytes.  Copying
/// a WireSlice copies a pointer + two offsets; the arena is freed when the
/// last referencing message dies.  Equality compares the referenced bytes,
/// not the arena identity, so a deserialized copy compares equal to the
/// original slice.
class WireSlice {
 public:
  WireSlice() = default;
  WireSlice(std::shared_ptr<const std::string> arena, std::uint32_t offset,
            std::uint32_t length)
      : arena_(std::move(arena)), offset_(offset), length_(length) {}

  /// A slice backed by a fresh arena holding a copy of [data, data + size).
  static WireSlice Copy(const char* data, std::size_t size);

  const char* data() const {
    return arena_ == nullptr ? nullptr : arena_->data() + offset_;
  }
  std::size_t size() const { return length_; }
  bool empty() const { return length_ == 0; }

  bool operator==(const WireSlice& other) const {
    if (length_ != other.length_) return false;
    if (length_ == 0) return true;
    return std::memcmp(data(), other.data(), length_) == 0;
  }

 private:
  std::shared_ptr<const std::string> arena_;
  std::uint32_t offset_ = 0;
  std::uint32_t length_ = 0;
};

struct LatencyUpdate {
  TaskId task;
  /// Parallel arrays: subtask[i] gets latency_ms[i].
  std::vector<SubtaskId> subtasks;
  std::vector<double> latencies_ms;

  bool operator==(const LatencyUpdate&) const = default;
};

struct ResourcePriceUpdate {
  ResourceId resource;
  double mu = 0.0;
  /// Iteration counter at the sender (for diagnostics / staleness studies).
  std::uint32_t epoch = 0;
  /// Whether the resource was congested when this price was computed; the
  /// controllers need it to apply the adaptive step-size heuristic to the
  /// paths traversing this resource (Sec. 5.2).
  bool congested = false;

  bool operator==(const ResourcePriceUpdate&) const = default;
};

/// Sent by a resource agent that restarted without state: every client
/// controller answers with a RepairResponse.
struct RepairRequest {
  ResourceId resource;

  bool operator==(const RepairRequest&) const = default;
};

/// A controller's absolute view of one resource, sent in reply to a
/// RepairRequest: the cached price (so the restarted agent resumes from the
/// freshest surviving mu_r instead of 0) and the controller's current
/// subtask latencies on that resource (so the agent's share-sum input is
/// rebuilt immediately).
struct RepairResponse {
  ResourceId resource;
  TaskId task;  ///< the responding controller's task
  double mu = 0.0;
  /// The resource epoch at which the controller cached `mu` — the restarted
  /// agent adopts the highest-epoch response it receives.
  std::uint32_t epoch = 0;
  bool congested = false;
  /// Parallel arrays: the controller's subtasks hosted on `resource`.
  std::vector<SubtaskId> subtasks;
  std::vector<double> latencies_ms;

  bool operator==(const RepairResponse&) const = default;
};

/// Sharded deployment: one controller's latencies for all of its subtasks
/// hosted on one shard's resources, in a single positional message.  The
/// receiver maps entry j onto the j-th element of its static per-client
/// membership list (the client's subtasks on the shard, in the client's
/// local subtask order); a count mismatch means a stale binding and the
/// message is ignored.
struct ShardLatencyUpdate {
  TaskId task;
  std::uint32_t shard = 0;
  /// Number of latency entries encoded in `payload`.
  std::uint32_t count = 0;
  /// [encoding u8][b1-encoded f64 words] (section_codec.h).
  WireSlice payload;

  bool operator==(const ShardLatencyUpdate&) const = default;
};

/// One shard agent's batched prices for one client: entry j is the j-th
/// resource of the static per-(shard, client) membership list (the client's
/// used resources on the shard, ascending).  Collapses the per-round
/// resource->controller traffic from O(resources) messages to O(shards)
/// per task, with one arena encode per round sliced per client.
struct ShardPriceUpdate {
  std::uint32_t shard = 0;
  /// The shard's broadcast round (shared by all its resources).
  std::uint32_t epoch = 0;
  /// Number of price entries encoded in `payload`.
  std::uint32_t count = 0;
  /// [flags u8][encoding u8][b1-encoded f64 mu words]
  /// [congested bitset ceil(count/8)][stale bitset ditto, iff flags & 1].
  /// A stale bit marks an entry whose resource is crashed or awaiting
  /// repair inside the shard (per-resource fault injection): the receiver
  /// keeps its cached price for that entry.
  WireSlice payload;

  bool operator==(const ShardPriceUpdate&) const = default;
};

using Payload = std::variant<LatencyUpdate, ResourcePriceUpdate,
                             RepairRequest, RepairResponse,
                             ShardLatencyUpdate, ShardPriceUpdate>;

struct Message {
  std::uint32_t sender = 0;    ///< EndpointId of the origin
  std::uint32_t receiver = 0;  ///< EndpointId of the destination
  /// Incarnation of the sender, stamped by the bus at Send time (0 until
  /// the endpoint restarts).  Receivers drop price traffic from a lower
  /// incarnation than the highest they have seen from that peer.
  std::uint32_t incarnation = 0;
  Payload payload;

  bool operator==(const Message&) const = default;
};

/// A span of bytes appended to an arena string: the (offset, length) a
/// WireSlice should reference once the arena is frozen into a shared_ptr.
struct ArenaSpan {
  std::uint32_t offset = 0;
  std::uint32_t length = 0;
};

/// Appends the ShardLatencyUpdate payload encoding of latencies[0..count)
/// to *arena.
ArenaSpan AppendShardLatencyPayload(const double* latencies,
                                    std::size_t count, std::string* arena);

/// Appends the ShardPriceUpdate payload encoding of mu[0..count) with the
/// per-entry congestion flags (one 0/1 byte each, packed to a bitset on the
/// wire).  `stale` is an optional parallel 0/1 array: null, or all-zero,
/// emits no stale bitset.
ArenaSpan AppendShardPricePayload(const double* mu,
                                  const std::uint8_t* congested,
                                  const std::uint8_t* stale,
                                  std::size_t count, std::string* arena);

/// Decodes a latency payload into latencies[0..update.count); false on any
/// malformed payload (wrong size, bad encoding, bad run/sparse structure).
bool DecodeShardLatencyUpdate(const ShardLatencyUpdate& update,
                              std::vector<double>* latencies);

/// Packed bitset views into a decoded price payload (valid while the
/// message's WireSlice arena lives).  `stale` is null when absent.
struct ShardPriceBitsets {
  const char* congested = nullptr;
  const char* stale = nullptr;
};

/// Decodes a price payload: mu words into *mu (resized to update.count) and
/// bitset pointers into *bits.  False on any malformed payload.
bool DecodeShardPriceUpdate(const ShardPriceUpdate& update,
                            std::vector<double>* mu, ShardPriceBitsets* bits);

/// Reads bit i of a packed little-endian bitset (bit j of byte i/8).
inline bool TestWireBit(const char* bits, std::size_t i) {
  return ((static_cast<unsigned char>(bits[i >> 3]) >> (i & 7)) & 1u) != 0;
}

/// Serializes to a compact binary representation (little-endian).
std::vector<std::uint8_t> Serialize(const Message& message);

/// Inverse of Serialize; nullopt on malformed input (truncation, bad tag).
std::optional<Message> Deserialize(const std::vector<std::uint8_t>& bytes);

/// Number of bytes Serialize would produce (used for traffic accounting).
std::size_t WireSize(const Message& message);

}  // namespace lla::net
