// Wire messages of the distributed LLA protocol (paper Sec. 4.1).
//
// Four message kinds circulate:
//   LatencyUpdate      controller -> resource: the new predicted latencies of
//                      the controller's subtasks hosted on that resource
//                      (the input to the resource's price computation).
//   ResourcePriceUpdate resource -> controller: the resource's new price mu_r.
//   RepairRequest      restarted resource -> controller: "I lost my state;
//                      send me yours" (crash-restart recovery, DESIGN.md
//                      §7.7).
//   RepairResponse     controller -> resource: absolute state — the
//                      controller's cached mu_r (with its epoch) plus the
//                      latencies of its subtasks hosted on that resource, so
//                      the resource can rebuild both halves of its price
//                      computation without waiting a full gossip round.
//
// Path prices never travel: each controller owns its task's paths and
// computes lambda_p locally (Sec. 4.3).  Every Message additionally carries
// the sender's incarnation number, stamped by the bus at Send time: a
// restarted endpoint bumps its incarnation, which lets receivers discard
// price messages that were in flight (or queued by stale epochs) from
// before the crash.  Messages are serialized to a binary wire format so the
// bus can account for bytes and tests can verify round-tripping.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <variant>
#include <vector>

#include "common/ids.h"

namespace lla::net {

struct LatencyUpdate {
  TaskId task;
  /// Parallel arrays: subtask[i] gets latency_ms[i].
  std::vector<SubtaskId> subtasks;
  std::vector<double> latencies_ms;

  bool operator==(const LatencyUpdate&) const = default;
};

struct ResourcePriceUpdate {
  ResourceId resource;
  double mu = 0.0;
  /// Iteration counter at the sender (for diagnostics / staleness studies).
  std::uint32_t epoch = 0;
  /// Whether the resource was congested when this price was computed; the
  /// controllers need it to apply the adaptive step-size heuristic to the
  /// paths traversing this resource (Sec. 5.2).
  bool congested = false;

  bool operator==(const ResourcePriceUpdate&) const = default;
};

/// Sent by a resource agent that restarted without state: every client
/// controller answers with a RepairResponse.
struct RepairRequest {
  ResourceId resource;

  bool operator==(const RepairRequest&) const = default;
};

/// A controller's absolute view of one resource, sent in reply to a
/// RepairRequest: the cached price (so the restarted agent resumes from the
/// freshest surviving mu_r instead of 0) and the controller's current
/// subtask latencies on that resource (so the agent's share-sum input is
/// rebuilt immediately).
struct RepairResponse {
  ResourceId resource;
  TaskId task;  ///< the responding controller's task
  double mu = 0.0;
  /// The resource epoch at which the controller cached `mu` — the restarted
  /// agent adopts the highest-epoch response it receives.
  std::uint32_t epoch = 0;
  bool congested = false;
  /// Parallel arrays: the controller's subtasks hosted on `resource`.
  std::vector<SubtaskId> subtasks;
  std::vector<double> latencies_ms;

  bool operator==(const RepairResponse&) const = default;
};

/// Sharded deployment (DESIGN.md §7.10): one controller's latencies for all
/// of its subtasks hosted on one shard's resources, in a single message
/// instead of one LatencyUpdate per resource.
struct ShardLatencyUpdate {
  TaskId task;
  std::uint32_t shard = 0;
  /// Parallel arrays: subtask[i] gets latency_ms[i].
  std::vector<SubtaskId> subtasks;
  std::vector<double> latencies_ms;

  bool operator==(const ShardLatencyUpdate&) const = default;
};

/// One shard agent's whole price vector: every resource of the shard with
/// its new mu and congestion flag, applied by receivers in one contiguous
/// pass.  Collapses the per-round resource->controller traffic from
/// O(resources) messages to O(shards).
struct ShardPriceUpdate {
  std::uint32_t shard = 0;
  /// The shard's broadcast round (shared by all its resources).
  std::uint32_t epoch = 0;
  /// Parallel arrays over the shard's resources.
  std::vector<ResourceId> resources;
  std::vector<double> mu;
  std::vector<std::uint8_t> congested;  ///< 0/1 per resource

  bool operator==(const ShardPriceUpdate&) const = default;
};

using Payload = std::variant<LatencyUpdate, ResourcePriceUpdate,
                             RepairRequest, RepairResponse,
                             ShardLatencyUpdate, ShardPriceUpdate>;

struct Message {
  std::uint32_t sender = 0;    ///< EndpointId of the origin
  std::uint32_t receiver = 0;  ///< EndpointId of the destination
  /// Incarnation of the sender, stamped by the bus at Send time (0 until
  /// the endpoint restarts).  Receivers drop price traffic from a lower
  /// incarnation than the highest they have seen from that peer.
  std::uint32_t incarnation = 0;
  Payload payload;

  bool operator==(const Message&) const = default;
};

/// Serializes to a compact binary representation (little-endian).
std::vector<std::uint8_t> Serialize(const Message& message);

/// Inverse of Serialize; nullopt on malformed input (truncation, bad tag).
std::optional<Message> Deserialize(const std::vector<std::uint8_t>& bytes);

/// Number of bytes Serialize would produce (used for traffic accounting).
std::size_t WireSize(const Message& message);

}  // namespace lla::net
