// Wire messages of the distributed LLA protocol (paper Sec. 4.1).
//
// Two message kinds circulate:
//   LatencyUpdate      controller -> resource: the new predicted latencies of
//                      the controller's subtasks hosted on that resource
//                      (the input to the resource's price computation).
//   ResourcePriceUpdate resource -> controller: the resource's new price mu_r.
//
// Path prices never travel: each controller owns its task's paths and
// computes lambda_p locally (Sec. 4.3).  Messages are serialized to a binary
// wire format so the bus can account for bytes and tests can verify
// round-tripping.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <variant>
#include <vector>

#include "common/ids.h"

namespace lla::net {

struct LatencyUpdate {
  TaskId task;
  /// Parallel arrays: subtask[i] gets latency_ms[i].
  std::vector<SubtaskId> subtasks;
  std::vector<double> latencies_ms;

  bool operator==(const LatencyUpdate&) const = default;
};

struct ResourcePriceUpdate {
  ResourceId resource;
  double mu = 0.0;
  /// Iteration counter at the sender (for diagnostics / staleness studies).
  std::uint32_t epoch = 0;
  /// Whether the resource was congested when this price was computed; the
  /// controllers need it to apply the adaptive step-size heuristic to the
  /// paths traversing this resource (Sec. 5.2).
  bool congested = false;

  bool operator==(const ResourcePriceUpdate&) const = default;
};

using Payload = std::variant<LatencyUpdate, ResourcePriceUpdate>;

struct Message {
  std::uint32_t sender = 0;    ///< EndpointId of the origin
  std::uint32_t receiver = 0;  ///< EndpointId of the destination
  Payload payload;

  bool operator==(const Message&) const = default;
};

/// Serializes to a compact binary representation (little-endian).
std::vector<std::uint8_t> Serialize(const Message& message);

/// Inverse of Serialize; nullopt on malformed input (truncation, bad tag).
std::optional<Message> Deserialize(const std::vector<std::uint8_t>& bytes);

/// Number of bytes Serialize would produce (used for traffic accounting).
std::size_t WireSize(const Message& message);

}  // namespace lla::net
