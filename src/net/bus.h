// InProcessBus: the simulated network connecting task controllers and
// resource agents.
//
// The paper evaluates LLA as a distributed algorithm; this bus lets the
// whole deployment run in one process while still exhibiting the properties
// that matter to the protocol — per-message delay (fixed + jitter),
// probabilistic loss, and asynchronous delivery order.  The bus owns a
// virtual clock and an event queue; endpoints also schedule local timers
// through it, which is what drives the asynchronous runtime.
//
// Determinism: all randomness (jitter, drops) comes from a seeded generator,
// and simultaneous events break ties by sequence number, so a given seed
// always yields the same trace.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <string>
#include <vector>

#include "common/rng.h"
#include "net/message.h"
#include "obs/metrics.h"

namespace lla {
class ThreadPool;
}  // namespace lla

namespace lla::net {

using EndpointId = std::uint32_t;

struct BusConfig {
  double base_delay_ms = 0.1;   ///< fixed propagation delay per message
  double jitter_ms = 0.0;       ///< uniform extra delay in [0, jitter_ms)
  double drop_probability = 0.0;
  std::uint64_t seed = 1;
  /// Deserialize-after-serialize on every delivery (exercises the wire
  /// format; off saves time in big sweeps).
  bool verify_wire_format = true;
  /// Registry for the bus counters: global bus.sent / bus.delivered /
  /// bus.dropped / bus.delayed (messages that drew extra jitter delay) /
  /// bus.timers_fired, plus per-endpoint bus.endpoint.<name>.sent /
  /// .delivered / .dropped resolved at Register time.  Null (the default)
  /// disables them; BusStats is always maintained (non-owning; must outlive
  /// the bus).
  obs::MetricRegistry* metrics = nullptr;
};

struct BusStats {
  std::uint64_t sent = 0;
  std::uint64_t delivered = 0;
  std::uint64_t dropped = 0;
  std::uint64_t timers_fired = 0;
  std::uint64_t bytes = 0;
};

class InProcessBus {
 public:
  using MessageHandler = std::function<void(const Message&)>;
  using TimerHandler = std::function<void(std::uint64_t token)>;

  explicit InProcessBus(BusConfig config = {});

  /// Registers an endpoint; the returned id is the address used in
  /// Message::sender/receiver.  Handlers run during Deliver*/Run* calls.
  EndpointId Register(std::string name, MessageHandler on_message,
                      TimerHandler on_timer = nullptr);

  /// Queues a message for delivery after the configured delay (or drops it).
  void Send(Message message);

  /// Failure injection: all messages to or from `endpoint` sent while
  /// now < until_ms are dropped (counted in stats().dropped).  Models a
  /// crashed/partitioned node; timers keep firing, so the node "recovers"
  /// with stale state — exactly what the price protocol must tolerate.
  void BlackoutEndpoint(EndpointId endpoint, double until_ms);

  /// True while the endpoint is inside a blackout window.
  bool IsBlackedOut(EndpointId endpoint) const;

  /// Crash-restart injection (DESIGN.md §7.7).  CrashEndpoint is an
  /// open-ended blackout: every message to or from the endpoint drops until
  /// RestartEndpoint, which clears the blackout and bumps the endpoint's
  /// incarnation — messages the endpoint sends from then on carry the new
  /// number, and anything it sent pre-crash (still in flight, or replayed
  /// from stale peer state) is identifiable as a lower incarnation.
  void CrashEndpoint(EndpointId endpoint);
  void RestartEndpoint(EndpointId endpoint);

  /// Current incarnation of the endpoint (0 until its first restart).
  std::uint32_t incarnation(EndpointId endpoint) const {
    return incarnation_[endpoint];
  }

  /// Schedules a timer at now + delay_ms for the endpoint.
  void ScheduleTimer(EndpointId endpoint, double delay_ms,
                     std::uint64_t token);

  /// Delivers the next pending event; false if none.
  bool DeliverNext();

  /// Runs events until the queue empties or the virtual clock passes
  /// `until_ms` (events after the horizon stay queued).
  void RunUntil(double until_ms);

  /// Runs all pending events (must terminate: endpoints that keep
  /// rescheduling timers should use RunUntil).
  void RunAll();

  /// RunAll with multi-threaded delivery (DESIGN.md §7.11): all events
  /// sharing the earliest virtual time form a *wave*; the wave's messages
  /// are grouped by receiver (first-touch order) and the groups fan out
  /// across `pool`, each endpoint's inbox draining in (endpoint, seq) order
  /// on exactly one worker.  Handler sends are deferred to per-lane
  /// outboxes and committed serially in group order after the join, so the
  /// resulting event sequence is deterministic at any thread count — and,
  /// when handlers do not send (the sync-round phases), byte-identical to
  /// serial RunAll.  Waves containing timer events, and single-event waves,
  /// dispatch serially with classic semantics.  Requires an RNG-free
  /// configuration (drop_probability == 0 && jitter_ms == 0): the serial
  /// path draws randoms in send order, which a deferred commit would
  /// permute.  A null or single-thread pool falls back to RunAll.
  void RunAllParallel(ThreadPool* pool);

  double now_ms() const { return now_ms_; }
  const BusStats& stats() const { return stats_; }
  std::size_t pending() const { return events_.size(); }
  const std::string& endpoint_name(EndpointId id) const {
    return endpoints_[id].name;
  }

 private:
  struct Endpoint {
    std::string name;
    MessageHandler on_message;
    TimerHandler on_timer;
    /// Per-endpoint counters (null when no registry is configured).
    obs::Counter* sent = nullptr;       ///< messages sent by this endpoint
    obs::Counter* delivered = nullptr;  ///< messages delivered to it
    obs::Counter* dropped = nullptr;    ///< drops it was party to
  };
  struct Event {
    bool is_timer = false;
    EndpointId endpoint = 0;  // timers
    std::uint64_t token = 0;  // timers
    Message message;          // messages
  };
  /// Heap entries are small and trivially copyable; payloads live in the
  /// slot table (also avoids moving std::variant through heap operations).
  struct EventKey {
    double at_ms;
    std::uint64_t seq;  ///< tie-break for determinism
    std::size_t slot;
  };
  struct EventLater {
    bool operator()(const EventKey& a, const EventKey& b) const {
      if (a.at_ms != b.at_ms) return a.at_ms > b.at_ms;
      return a.seq > b.seq;
    }
  };

  void Push(double at_ms, Event event);
  void Dispatch(double at_ms, const Event& event);
  /// One parallel wave: serial blackout drops + receiver grouping, the
  /// fan-out, then the serial commit (stats, slot recycling, deferred
  /// sends).
  void DispatchWaveParallel(double at_ms, const std::vector<EventKey>& wave,
                            ThreadPool* pool);

  BusConfig config_;
  Rng rng_;
  std::vector<Endpoint> endpoints_;
  std::vector<double> blackout_until_ms_;  ///< parallel to endpoints_
  std::vector<std::uint32_t> incarnation_;  ///< parallel to endpoints_
  std::priority_queue<EventKey, std::vector<EventKey>, EventLater> events_;
  std::vector<Event> slots_;
  std::vector<std::size_t> free_slots_;
  double now_ms_ = 0.0;
  std::uint64_t next_seq_ = 0;
  BusStats stats_;

  /// Scratch for RunAllParallel, reused across waves to avoid per-wave
  /// allocation: the receiver groups (endpoint + its wave slots in seq
  /// order), the endpoint -> active-group map (-1 when untouched), and the
  /// per-lane deferred-send outboxes.
  struct WaveGroup {
    EndpointId endpoint = 0;
    std::vector<std::size_t> slots;
  };
  std::vector<WaveGroup> wave_groups_;
  std::vector<int> endpoint_wave_group_;
  std::vector<std::vector<Message>> lane_outboxes_;
  std::vector<EventKey> wave_scratch_;

  /// Global counters (null when no registry is configured).
  obs::Counter* sent_counter_ = nullptr;
  obs::Counter* delivered_counter_ = nullptr;
  obs::Counter* dropped_counter_ = nullptr;
  obs::Counter* delayed_counter_ = nullptr;
  obs::Counter* timers_counter_ = nullptr;

  void CountDrop(const Message& message);
};

}  // namespace lla::net
