#include "net/bus.h"

#include <cassert>
#include <limits>

#include "common/logging.h"
#include "common/parallel.h"

namespace lla::net {
namespace {

/// Non-null while this thread runs handlers inside a parallel wave: Send
/// appends here instead of touching the (shared) queue, and the wave's
/// serial epilogue replays the outboxes through the real Send in lane
/// order.  Thread-local, so the redirect needs no locking and cannot leak
/// across buses (it is only set for the duration of one wave's handlers).
thread_local std::vector<Message>* tls_deferred_sends = nullptr;

}  // namespace

InProcessBus::InProcessBus(BusConfig config)
    : config_(config), rng_(config.seed) {
  assert(config.base_delay_ms >= 0.0);
  assert(config.jitter_ms >= 0.0);
  assert(config.drop_probability >= 0.0 && config.drop_probability <= 1.0);
  if (config_.metrics != nullptr) {
    sent_counter_ = config_.metrics->GetCounter("bus.sent");
    delivered_counter_ = config_.metrics->GetCounter("bus.delivered");
    dropped_counter_ = config_.metrics->GetCounter("bus.dropped");
    delayed_counter_ = config_.metrics->GetCounter("bus.delayed");
    timers_counter_ = config_.metrics->GetCounter("bus.timers_fired");
  }
}

EndpointId InProcessBus::Register(std::string name, MessageHandler on_message,
                                  TimerHandler on_timer) {
  const EndpointId id = static_cast<EndpointId>(endpoints_.size());
  Endpoint endpoint{std::move(name), std::move(on_message),
                    std::move(on_timer)};
  if (config_.metrics != nullptr) {
    const std::string prefix = "bus.endpoint." + endpoint.name;
    endpoint.sent = config_.metrics->GetCounter(prefix + ".sent");
    endpoint.delivered = config_.metrics->GetCounter(prefix + ".delivered");
    endpoint.dropped = config_.metrics->GetCounter(prefix + ".dropped");
  }
  endpoints_.push_back(std::move(endpoint));
  blackout_until_ms_.push_back(-1.0);
  incarnation_.push_back(0);
  return id;
}

void InProcessBus::CountDrop(const Message& message) {
  ++stats_.dropped;
  // The endpoint counters are resolved independently of the global one
  // (Register creates them iff a registry is configured), so each gets its
  // own null test: gating the endpoint increments on the global counter
  // silently lost endpoint drop metrics whenever only endpoint-level
  // counters existed.
  if (dropped_counter_ != nullptr) dropped_counter_->Increment();
  if (endpoints_[message.sender].dropped != nullptr) {
    endpoints_[message.sender].dropped->Increment();
  }
  if (endpoints_[message.receiver].dropped != nullptr) {
    endpoints_[message.receiver].dropped->Increment();
  }
}

void InProcessBus::BlackoutEndpoint(EndpointId endpoint, double until_ms) {
  assert(endpoint < endpoints_.size());
  blackout_until_ms_[endpoint] =
      std::max(blackout_until_ms_[endpoint], until_ms);
}

bool InProcessBus::IsBlackedOut(EndpointId endpoint) const {
  return now_ms_ < blackout_until_ms_[endpoint];
}

void InProcessBus::CrashEndpoint(EndpointId endpoint) {
  assert(endpoint < endpoints_.size());
  blackout_until_ms_[endpoint] = std::numeric_limits<double>::infinity();
}

void InProcessBus::RestartEndpoint(EndpointId endpoint) {
  assert(endpoint < endpoints_.size());
  blackout_until_ms_[endpoint] = -1.0;
  ++incarnation_[endpoint];
}

void InProcessBus::Push(double at_ms, Event event) {
  std::size_t slot;
  if (!free_slots_.empty()) {
    slot = free_slots_.back();
    free_slots_.pop_back();
    slots_[slot] = std::move(event);
  } else {
    slot = slots_.size();
    slots_.push_back(std::move(event));
  }
  events_.push(EventKey{at_ms, next_seq_++, slot});
}

void InProcessBus::Send(Message message) {
  if (tls_deferred_sends != nullptr) {
    // Parallel wave in progress: queue mutation is unsafe and send-time
    // accounting must happen in deterministic commit order, so park the
    // message in this lane's outbox untouched.
    tls_deferred_sends->push_back(std::move(message));
    return;
  }
  assert(message.sender < endpoints_.size());
  assert(message.receiver < endpoints_.size());
  // Stamp the sender's incarnation before any accounting so the wire bytes
  // and the delivered message agree.
  message.incarnation = incarnation_[message.sender];
  ++stats_.sent;
  stats_.bytes += WireSize(message);
  if (sent_counter_ != nullptr) sent_counter_->Increment();
  if (endpoints_[message.sender].sent != nullptr) {
    endpoints_[message.sender].sent->Increment();
  }
  if (IsBlackedOut(message.sender) || IsBlackedOut(message.receiver)) {
    CountDrop(message);
    return;
  }
  if (config_.drop_probability > 0.0 &&
      rng_.NextDouble() < config_.drop_probability) {
    CountDrop(message);
    return;
  }
  double delay = config_.base_delay_ms;
  if (config_.jitter_ms > 0.0) {
    const double jitter = rng_.Uniform(0.0, config_.jitter_ms);
    delay += jitter;
    if (jitter > 0.0 && delayed_counter_ != nullptr) {
      delayed_counter_->Increment();
    }
  }
  Event event;
  event.is_timer = false;
  event.endpoint = message.receiver;
  event.message = std::move(message);
  Push(now_ms_ + delay, std::move(event));
}

void InProcessBus::ScheduleTimer(EndpointId endpoint, double delay_ms,
                                 std::uint64_t token) {
  assert(endpoint < endpoints_.size());
  assert(delay_ms >= 0.0);
  Event event;
  event.is_timer = true;
  event.endpoint = endpoint;
  event.token = token;
  Push(now_ms_ + delay_ms, std::move(event));
}

void InProcessBus::Dispatch(double at_ms, const Event& event) {
  now_ms_ = at_ms;
  Endpoint& endpoint = endpoints_[event.endpoint];
  if (event.is_timer) {
    ++stats_.timers_fired;
    if (timers_counter_ != nullptr) timers_counter_->Increment();
    if (endpoint.on_timer) endpoint.on_timer(event.token);
    return;
  }
  if (IsBlackedOut(event.endpoint)) {
    CountDrop(event.message);
    return;
  }
  ++stats_.delivered;
  if (delivered_counter_ != nullptr) delivered_counter_->Increment();
  if (endpoint.delivered != nullptr) endpoint.delivered->Increment();
  if (config_.verify_wire_format) {
    const auto round_trip = Deserialize(Serialize(event.message));
    assert(round_trip.has_value() && *round_trip == event.message);
    (void)round_trip;
  }
  if (endpoint.on_message) endpoint.on_message(event.message);
}

bool InProcessBus::DeliverNext() {
  if (events_.empty()) return false;
  const EventKey key = events_.top();
  events_.pop();
  // Move the payload out of the slot before dispatch: the handler may push
  // new events and recycle slots.
  Event event = std::move(slots_[key.slot]);
  free_slots_.push_back(key.slot);
  Dispatch(key.at_ms, event);
  return true;
}

void InProcessBus::RunUntil(double until_ms) {
  while (!events_.empty() && events_.top().at_ms <= until_ms) {
    const EventKey key = events_.top();
    events_.pop();
    Event event = std::move(slots_[key.slot]);
    free_slots_.push_back(key.slot);
    Dispatch(key.at_ms, event);
  }
  now_ms_ = std::max(now_ms_, until_ms);
}

void InProcessBus::RunAll() {
  while (DeliverNext()) {
  }
}

void InProcessBus::RunAllParallel(ThreadPool* pool) {
  if (pool == nullptr || pool->size() <= 1) {
    RunAll();
    return;
  }
  // Deterministic parallel delivery needs an RNG-free send path: the serial
  // bus draws drop/jitter randoms in send order, which the deferred commit
  // would permute.
  assert(config_.drop_probability == 0.0 && config_.jitter_ms == 0.0);
  std::vector<EventKey>& wave = wave_scratch_;
  while (!events_.empty()) {
    const double at = events_.top().at_ms;
    wave.clear();
    bool has_timer = false;
    while (!events_.empty() && events_.top().at_ms == at) {
      wave.push_back(events_.top());
      events_.pop();
      if (slots_[wave.back().slot].is_timer) has_timer = true;
    }
    if (has_timer || wave.size() < 2) {
      // Timers may reschedule at the same instant; single events gain
      // nothing from a fan-out.  Events the handlers push at the same time
      // carry higher seqs than everything popped above, so processing them
      // in the next outer iteration preserves the serial (at, seq) order.
      for (const EventKey& key : wave) {
        Event event = std::move(slots_[key.slot]);
        free_slots_.push_back(key.slot);
        Dispatch(key.at_ms, event);
      }
      continue;
    }
    DispatchWaveParallel(at, wave, pool);
  }
}

void InProcessBus::DispatchWaveParallel(double at_ms,
                                        const std::vector<EventKey>& wave,
                                        ThreadPool* pool) {
  now_ms_ = at_ms;
  // Serial prologue: count blackout drops (totals match serial delivery;
  // counting order is irrelevant) and group the deliverable messages by
  // receiver in first-touch order.  The wave is already seq-sorted, so each
  // group's slot list drains its endpoint's inbox in exact serial order.
  if (endpoint_wave_group_.size() < endpoints_.size()) {
    endpoint_wave_group_.assign(endpoints_.size(), -1);
  }
  std::size_t group_count = 0;
  for (const EventKey& key : wave) {
    Event& event = slots_[key.slot];
    if (IsBlackedOut(event.endpoint)) {
      CountDrop(event.message);
      free_slots_.push_back(key.slot);
      continue;
    }
    int group = endpoint_wave_group_[event.endpoint];
    if (group < 0) {
      group = static_cast<int>(group_count++);
      if (wave_groups_.size() < group_count) wave_groups_.emplace_back();
      wave_groups_[static_cast<std::size_t>(group)].endpoint = event.endpoint;
      wave_groups_[static_cast<std::size_t>(group)].slots.clear();
      endpoint_wave_group_[event.endpoint] = group;
    }
    wave_groups_[static_cast<std::size_t>(group)].slots.push_back(key.slot);
  }
  for (std::size_t g = 0; g < group_count; ++g) {
    endpoint_wave_group_[wave_groups_[g].endpoint] = -1;
  }
  if (group_count == 0) return;

  // Fan-out: contiguous group chunks per lane (grain 1 — a group is a whole
  // endpoint's inbox).  Workers touch only their own groups' endpoints,
  // their lane outbox, and their delivered tally; obs counters are
  // relaxed-atomic.  No queue/slot mutation happens here — handler sends
  // are redirected to the lane outbox via tls_deferred_sends.
  const int participants =
      pool->ParticipantsFor(group_count, /*min_items_per_thread=*/1);
  if (lane_outboxes_.size() < static_cast<std::size_t>(participants)) {
    lane_outboxes_.resize(static_cast<std::size_t>(participants));
  }
  std::vector<std::uint64_t> lane_delivered(
      static_cast<std::size_t>(participants), 0);
  pool->RunRegion(participants, [&](int index, int total) {
    const auto [begin, end] = ChunkRange(group_count, total, index);
    tls_deferred_sends = &lane_outboxes_[static_cast<std::size_t>(index)];
    std::uint64_t delivered = 0;
    for (std::size_t g = begin; g < end; ++g) {
      Endpoint& endpoint = endpoints_[wave_groups_[g].endpoint];
      for (const std::size_t slot : wave_groups_[g].slots) {
        const Event& event = slots_[slot];
        ++delivered;
        if (endpoint.delivered != nullptr) endpoint.delivered->Increment();
        if (config_.verify_wire_format) {
          const auto round_trip = Deserialize(Serialize(event.message));
          assert(round_trip.has_value() && *round_trip == event.message);
          (void)round_trip;
        }
        if (endpoint.on_message) endpoint.on_message(event.message);
      }
    }
    lane_delivered[static_cast<std::size_t>(index)] = delivered;
    tls_deferred_sends = nullptr;
  });

  // Serial epilogue: fold the tallies, recycle the wave's slots, then
  // commit the deferred sends.  Lane i holds the sends of groups
  // [ChunkRange(i)), so concatenating lanes 0..P-1 replays them in group
  // order — the same sequence at any thread count.
  std::uint64_t total_delivered = 0;
  for (const std::uint64_t delivered : lane_delivered) {
    total_delivered += delivered;
  }
  stats_.delivered += total_delivered;
  if (delivered_counter_ != nullptr) {
    delivered_counter_->Increment(total_delivered);
  }
  for (std::size_t g = 0; g < group_count; ++g) {
    for (const std::size_t slot : wave_groups_[g].slots) {
      free_slots_.push_back(slot);
    }
  }
  for (int lane = 0; lane < participants; ++lane) {
    auto& outbox = lane_outboxes_[static_cast<std::size_t>(lane)];
    for (Message& message : outbox) Send(std::move(message));
    outbox.clear();
  }
}

}  // namespace lla::net
