#include "net/message.h"

#include <cstring>

namespace lla::net {
namespace {

constexpr std::uint8_t kTagLatencyUpdate = 1;
constexpr std::uint8_t kTagResourcePriceUpdate = 2;
constexpr std::uint8_t kTagRepairRequest = 3;
constexpr std::uint8_t kTagRepairResponse = 4;
constexpr std::uint8_t kTagShardLatencyUpdate = 5;
constexpr std::uint8_t kTagShardPriceUpdate = 6;

class Writer {
 public:
  explicit Writer(std::vector<std::uint8_t>* out) : out_(out) {}

  void U8(std::uint8_t v) { out_->push_back(v); }
  void U32(std::uint32_t v) {
    for (int i = 0; i < 4; ++i) out_->push_back((v >> (8 * i)) & 0xff);
  }
  void F64(double v) {
    std::uint64_t bits;
    std::memcpy(&bits, &v, sizeof(bits));
    for (int i = 0; i < 8; ++i) out_->push_back((bits >> (8 * i)) & 0xff);
  }

 private:
  std::vector<std::uint8_t>* out_;
};

class Reader {
 public:
  explicit Reader(const std::vector<std::uint8_t>& in) : in_(in) {}

  bool U8(std::uint8_t* v) {
    if (pos_ + 1 > in_.size()) return false;
    *v = in_[pos_++];
    return true;
  }
  bool U32(std::uint32_t* v) {
    if (pos_ + 4 > in_.size()) return false;
    *v = 0;
    for (int i = 0; i < 4; ++i) {
      *v |= static_cast<std::uint32_t>(in_[pos_++]) << (8 * i);
    }
    return true;
  }
  bool F64(double* v) {
    if (pos_ + 8 > in_.size()) return false;
    std::uint64_t bits = 0;
    for (int i = 0; i < 8; ++i) {
      bits |= static_cast<std::uint64_t>(in_[pos_++]) << (8 * i);
    }
    std::memcpy(v, &bits, sizeof(*v));
    return true;
  }
  bool AtEnd() const { return pos_ == in_.size(); }

 private:
  const std::vector<std::uint8_t>& in_;
  std::size_t pos_ = 0;
};

}  // namespace

std::vector<std::uint8_t> Serialize(const Message& message) {
  std::vector<std::uint8_t> bytes;
  Writer w(&bytes);
  w.U32(message.sender);
  w.U32(message.receiver);
  w.U32(message.incarnation);
  if (const auto* latency = std::get_if<LatencyUpdate>(&message.payload)) {
    w.U8(kTagLatencyUpdate);
    w.U32(latency->task.value());
    w.U32(static_cast<std::uint32_t>(latency->subtasks.size()));
    for (std::size_t i = 0; i < latency->subtasks.size(); ++i) {
      w.U32(latency->subtasks[i].value());
      w.F64(latency->latencies_ms[i]);
    }
  } else if (const auto* price =
                 std::get_if<ResourcePriceUpdate>(&message.payload)) {
    w.U8(kTagResourcePriceUpdate);
    w.U32(price->resource.value());
    w.F64(price->mu);
    w.U32(price->epoch);
    w.U8(price->congested ? 1 : 0);
  } else if (const auto* request =
                 std::get_if<RepairRequest>(&message.payload)) {
    w.U8(kTagRepairRequest);
    w.U32(request->resource.value());
  } else if (const auto* shard_latency =
                 std::get_if<ShardLatencyUpdate>(&message.payload)) {
    w.U8(kTagShardLatencyUpdate);
    w.U32(shard_latency->task.value());
    w.U32(shard_latency->shard);
    w.U32(static_cast<std::uint32_t>(shard_latency->subtasks.size()));
    for (std::size_t i = 0; i < shard_latency->subtasks.size(); ++i) {
      w.U32(shard_latency->subtasks[i].value());
      w.F64(shard_latency->latencies_ms[i]);
    }
  } else if (const auto* shard_price =
                 std::get_if<ShardPriceUpdate>(&message.payload)) {
    w.U8(kTagShardPriceUpdate);
    w.U32(shard_price->shard);
    w.U32(shard_price->epoch);
    w.U32(static_cast<std::uint32_t>(shard_price->resources.size()));
    for (std::size_t i = 0; i < shard_price->resources.size(); ++i) {
      w.U32(shard_price->resources[i].value());
      w.F64(shard_price->mu[i]);
      w.U8(shard_price->congested[i] ? 1 : 0);
    }
  } else {
    const auto& repair = std::get<RepairResponse>(message.payload);
    w.U8(kTagRepairResponse);
    w.U32(repair.resource.value());
    w.U32(repair.task.value());
    w.F64(repair.mu);
    w.U32(repair.epoch);
    w.U8(repair.congested ? 1 : 0);
    w.U32(static_cast<std::uint32_t>(repair.subtasks.size()));
    for (std::size_t i = 0; i < repair.subtasks.size(); ++i) {
      w.U32(repair.subtasks[i].value());
      w.F64(repair.latencies_ms[i]);
    }
  }
  return bytes;
}

std::optional<Message> Deserialize(const std::vector<std::uint8_t>& bytes) {
  Reader r(bytes);
  Message message;
  std::uint8_t tag = 0;
  if (!r.U32(&message.sender) || !r.U32(&message.receiver) ||
      !r.U32(&message.incarnation) || !r.U8(&tag)) {
    return std::nullopt;
  }
  if (tag == kTagLatencyUpdate) {
    LatencyUpdate update;
    std::uint32_t task = 0, count = 0;
    if (!r.U32(&task) || !r.U32(&count)) return std::nullopt;
    update.task = TaskId(task);
    update.subtasks.reserve(count);
    update.latencies_ms.reserve(count);
    for (std::uint32_t i = 0; i < count; ++i) {
      std::uint32_t subtask = 0;
      double latency = 0.0;
      if (!r.U32(&subtask) || !r.F64(&latency)) return std::nullopt;
      update.subtasks.push_back(SubtaskId(subtask));
      update.latencies_ms.push_back(latency);
    }
    message.payload = std::move(update);
  } else if (tag == kTagResourcePriceUpdate) {
    ResourcePriceUpdate update;
    std::uint32_t resource = 0;
    std::uint8_t congested = 0;
    if (!r.U32(&resource) || !r.F64(&update.mu) || !r.U32(&update.epoch) ||
        !r.U8(&congested) || congested > 1) {
      return std::nullopt;
    }
    update.resource = ResourceId(resource);
    update.congested = congested != 0;
    message.payload = std::move(update);
  } else if (tag == kTagRepairRequest) {
    RepairRequest request;
    std::uint32_t resource = 0;
    if (!r.U32(&resource)) return std::nullopt;
    request.resource = ResourceId(resource);
    message.payload = std::move(request);
  } else if (tag == kTagRepairResponse) {
    RepairResponse repair;
    std::uint32_t resource = 0, task = 0, count = 0;
    std::uint8_t congested = 0;
    if (!r.U32(&resource) || !r.U32(&task) || !r.F64(&repair.mu) ||
        !r.U32(&repair.epoch) || !r.U8(&congested) || congested > 1 ||
        !r.U32(&count)) {
      return std::nullopt;
    }
    repair.resource = ResourceId(resource);
    repair.task = TaskId(task);
    repair.congested = congested != 0;
    repair.subtasks.reserve(count);
    repair.latencies_ms.reserve(count);
    for (std::uint32_t i = 0; i < count; ++i) {
      std::uint32_t subtask = 0;
      double latency = 0.0;
      if (!r.U32(&subtask) || !r.F64(&latency)) return std::nullopt;
      repair.subtasks.push_back(SubtaskId(subtask));
      repair.latencies_ms.push_back(latency);
    }
    message.payload = std::move(repair);
  } else if (tag == kTagShardLatencyUpdate) {
    ShardLatencyUpdate update;
    std::uint32_t task = 0, count = 0;
    if (!r.U32(&task) || !r.U32(&update.shard) || !r.U32(&count)) {
      return std::nullopt;
    }
    update.task = TaskId(task);
    update.subtasks.reserve(count);
    update.latencies_ms.reserve(count);
    for (std::uint32_t i = 0; i < count; ++i) {
      std::uint32_t subtask = 0;
      double latency = 0.0;
      if (!r.U32(&subtask) || !r.F64(&latency)) return std::nullopt;
      update.subtasks.push_back(SubtaskId(subtask));
      update.latencies_ms.push_back(latency);
    }
    message.payload = std::move(update);
  } else if (tag == kTagShardPriceUpdate) {
    ShardPriceUpdate update;
    std::uint32_t count = 0;
    if (!r.U32(&update.shard) || !r.U32(&update.epoch) || !r.U32(&count)) {
      return std::nullopt;
    }
    update.resources.reserve(count);
    update.mu.reserve(count);
    update.congested.reserve(count);
    for (std::uint32_t i = 0; i < count; ++i) {
      std::uint32_t resource = 0;
      double mu = 0.0;
      std::uint8_t congested = 0;
      if (!r.U32(&resource) || !r.F64(&mu) || !r.U8(&congested) ||
          congested > 1) {
        return std::nullopt;
      }
      update.resources.push_back(ResourceId(resource));
      update.mu.push_back(mu);
      update.congested.push_back(congested);
    }
    message.payload = std::move(update);
  } else {
    return std::nullopt;
  }
  if (!r.AtEnd()) return std::nullopt;  // trailing garbage
  return message;
}

std::size_t WireSize(const Message& message) {
  constexpr std::size_t kHeader = 4 + 4 + 4 + 1;  // sender/receiver/inc/tag
  if (const auto* latency = std::get_if<LatencyUpdate>(&message.payload)) {
    return kHeader + 4 + 4 + latency->subtasks.size() * 12;
  }
  if (std::holds_alternative<ResourcePriceUpdate>(message.payload)) {
    return kHeader + 4 + 8 + 4 + 1;
  }
  if (std::holds_alternative<RepairRequest>(message.payload)) {
    return kHeader + 4;
  }
  if (const auto* shard_latency =
          std::get_if<ShardLatencyUpdate>(&message.payload)) {
    return kHeader + 4 + 4 + 4 + shard_latency->subtasks.size() * 12;
  }
  if (const auto* shard_price =
          std::get_if<ShardPriceUpdate>(&message.payload)) {
    return kHeader + 4 + 4 + 4 + shard_price->resources.size() * 13;
  }
  const auto& repair = std::get<RepairResponse>(message.payload);
  return kHeader + 4 + 4 + 8 + 4 + 1 + 4 + repair.subtasks.size() * 12;
}

}  // namespace lla::net
