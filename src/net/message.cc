#include "net/message.h"

#include <cstring>

#include "model/section_codec.h"

namespace lla::net {
namespace {

constexpr std::uint8_t kTagLatencyUpdate = 1;
constexpr std::uint8_t kTagResourcePriceUpdate = 2;
constexpr std::uint8_t kTagRepairRequest = 3;
constexpr std::uint8_t kTagRepairResponse = 4;
constexpr std::uint8_t kTagShardLatencyUpdate = 5;
constexpr std::uint8_t kTagShardPriceUpdate = 6;

/// Entry-count ceiling for the positional shard payloads: rejects count
/// fields that would drive huge decode allocations before the size checks
/// can catch them (2^24 entries is ~134 MB of f64 — far beyond any shard).
constexpr std::uint32_t kMaxShardEntries = 1u << 24;

class Writer {
 public:
  explicit Writer(std::vector<std::uint8_t>* out) : out_(out) {}

  void U8(std::uint8_t v) { out_->push_back(v); }
  void U32(std::uint32_t v) {
    for (int i = 0; i < 4; ++i) out_->push_back((v >> (8 * i)) & 0xff);
  }
  void F64(double v) {
    std::uint64_t bits;
    std::memcpy(&bits, &v, sizeof(bits));
    for (int i = 0; i < 8; ++i) out_->push_back((bits >> (8 * i)) & 0xff);
  }
  void Bytes(const char* data, std::size_t size) {
    out_->insert(out_->end(), reinterpret_cast<const std::uint8_t*>(data),
                 reinterpret_cast<const std::uint8_t*>(data) + size);
  }

 private:
  std::vector<std::uint8_t>* out_;
};

class Reader {
 public:
  explicit Reader(const std::vector<std::uint8_t>& in) : in_(in) {}

  bool U8(std::uint8_t* v) {
    if (pos_ + 1 > in_.size()) return false;
    *v = in_[pos_++];
    return true;
  }
  bool U32(std::uint32_t* v) {
    if (pos_ + 4 > in_.size()) return false;
    *v = 0;
    for (int i = 0; i < 4; ++i) {
      *v |= static_cast<std::uint32_t>(in_[pos_++]) << (8 * i);
    }
    return true;
  }
  bool F64(double* v) {
    if (pos_ + 8 > in_.size()) return false;
    std::uint64_t bits = 0;
    for (int i = 0; i < 8; ++i) {
      bits |= static_cast<std::uint64_t>(in_[pos_++]) << (8 * i);
    }
    std::memcpy(v, &bits, sizeof(*v));
    return true;
  }
  /// Remaining bytes (the positional payloads extend to the end of the
  /// message, so their length is implicit).
  std::size_t Remaining() const { return in_.size() - pos_; }
  const char* Here() const {
    return reinterpret_cast<const char*>(in_.data()) + pos_;
  }
  void Skip(std::size_t n) { pos_ += n; }
  bool AtEnd() const { return pos_ == in_.size(); }

 private:
  const std::vector<std::uint8_t>& in_;
  std::size_t pos_ = 0;
};

void AppendPackedBitset(const std::uint8_t* bits01, std::size_t count,
                        std::string* arena) {
  for (std::size_t base = 0; base < count; base += 8) {
    unsigned char byte = 0;
    for (std::size_t j = 0; j < 8 && base + j < count; ++j) {
      if (bits01[base + j] != 0) byte |= static_cast<unsigned char>(1u << j);
    }
    arena->push_back(static_cast<char>(byte));
  }
}

}  // namespace

WireSlice WireSlice::Copy(const char* data, std::size_t size) {
  auto arena = std::make_shared<const std::string>(data, size);
  return WireSlice(std::move(arena), 0, static_cast<std::uint32_t>(size));
}

ArenaSpan AppendShardLatencyPayload(const double* latencies,
                                    std::size_t count, std::string* arena) {
  ArenaSpan span;
  span.offset = static_cast<std::uint32_t>(arena->size());
  arena->push_back('\0');  // encoding byte, patched after EncodeWords
  const std::uint8_t encoding = b1::EncodeWords(latencies, count, arena);
  (*arena)[span.offset] = static_cast<char>(encoding);
  span.length = static_cast<std::uint32_t>(arena->size() - span.offset);
  return span;
}

ArenaSpan AppendShardPricePayload(const double* mu,
                                  const std::uint8_t* congested,
                                  const std::uint8_t* stale,
                                  std::size_t count, std::string* arena) {
  bool any_stale = false;
  if (stale != nullptr) {
    for (std::size_t i = 0; i < count && !any_stale; ++i) {
      any_stale = stale[i] != 0;
    }
  }
  ArenaSpan span;
  span.offset = static_cast<std::uint32_t>(arena->size());
  arena->push_back(any_stale ? '\1' : '\0');  // flags
  arena->push_back('\0');  // encoding byte, patched after EncodeWords
  const std::uint8_t encoding = b1::EncodeWords(mu, count, arena);
  (*arena)[span.offset + 1] = static_cast<char>(encoding);
  AppendPackedBitset(congested, count, arena);
  if (any_stale) AppendPackedBitset(stale, count, arena);
  span.length = static_cast<std::uint32_t>(arena->size() - span.offset);
  return span;
}

bool DecodeShardLatencyUpdate(const ShardLatencyUpdate& update,
                              std::vector<double>* latencies) {
  const char* data = update.payload.data();
  const std::size_t size = update.payload.size();
  if (size < 1 || update.count > kMaxShardEntries) return false;
  const auto encoding = static_cast<std::uint8_t>(data[0]);
  std::size_t words = 0;
  if (!b1::EncodedWordsSize<double>(data + 1, size - 1, encoding,
                                    update.count, &words) ||
      size != 1 + words) {
    return false;
  }
  latencies->resize(update.count);
  std::string error;
  return b1::DecodeWords<double>(data + 1, words, encoding, update.count,
                                 latencies->data(), &error);
}

bool DecodeShardPriceUpdate(const ShardPriceUpdate& update,
                            std::vector<double>* mu,
                            ShardPriceBitsets* bits) {
  const char* data = update.payload.data();
  const std::size_t size = update.payload.size();
  if (size < 2 || update.count > kMaxShardEntries) return false;
  const auto flags = static_cast<std::uint8_t>(data[0]);
  if (flags > 1) return false;
  const auto encoding = static_cast<std::uint8_t>(data[1]);
  std::size_t words = 0;
  if (!b1::EncodedWordsSize<double>(data + 2, size - 2, encoding,
                                    update.count, &words)) {
    return false;
  }
  const std::size_t bitset = (update.count + 7) / 8;
  const std::size_t expected =
      2 + words + bitset + ((flags & 1) != 0 ? bitset : 0);
  if (size != expected) return false;
  mu->resize(update.count);
  std::string error;
  if (!b1::DecodeWords<double>(data + 2, words, encoding, update.count,
                               mu->data(), &error)) {
    return false;
  }
  bits->congested = data + 2 + words;
  bits->stale = (flags & 1) != 0 ? data + 2 + words + bitset : nullptr;
  return true;
}

std::vector<std::uint8_t> Serialize(const Message& message) {
  std::vector<std::uint8_t> bytes;
  Writer w(&bytes);
  w.U32(message.sender);
  w.U32(message.receiver);
  w.U32(message.incarnation);
  if (const auto* latency = std::get_if<LatencyUpdate>(&message.payload)) {
    w.U8(kTagLatencyUpdate);
    w.U32(latency->task.value());
    w.U32(static_cast<std::uint32_t>(latency->subtasks.size()));
    for (std::size_t i = 0; i < latency->subtasks.size(); ++i) {
      w.U32(latency->subtasks[i].value());
      w.F64(latency->latencies_ms[i]);
    }
  } else if (const auto* price =
                 std::get_if<ResourcePriceUpdate>(&message.payload)) {
    w.U8(kTagResourcePriceUpdate);
    w.U32(price->resource.value());
    w.F64(price->mu);
    w.U32(price->epoch);
    w.U8(price->congested ? 1 : 0);
  } else if (const auto* request =
                 std::get_if<RepairRequest>(&message.payload)) {
    w.U8(kTagRepairRequest);
    w.U32(request->resource.value());
  } else if (const auto* shard_latency =
                 std::get_if<ShardLatencyUpdate>(&message.payload)) {
    w.U8(kTagShardLatencyUpdate);
    w.U32(shard_latency->task.value());
    w.U32(shard_latency->shard);
    w.U32(shard_latency->count);
    if (!shard_latency->payload.empty()) {
      w.Bytes(shard_latency->payload.data(), shard_latency->payload.size());
    }
  } else if (const auto* shard_price =
                 std::get_if<ShardPriceUpdate>(&message.payload)) {
    w.U8(kTagShardPriceUpdate);
    w.U32(shard_price->shard);
    w.U32(shard_price->epoch);
    w.U32(shard_price->count);
    if (!shard_price->payload.empty()) {
      w.Bytes(shard_price->payload.data(), shard_price->payload.size());
    }
  } else {
    const auto& repair = std::get<RepairResponse>(message.payload);
    w.U8(kTagRepairResponse);
    w.U32(repair.resource.value());
    w.U32(repair.task.value());
    w.F64(repair.mu);
    w.U32(repair.epoch);
    w.U8(repair.congested ? 1 : 0);
    w.U32(static_cast<std::uint32_t>(repair.subtasks.size()));
    for (std::size_t i = 0; i < repair.subtasks.size(); ++i) {
      w.U32(repair.subtasks[i].value());
      w.F64(repair.latencies_ms[i]);
    }
  }
  return bytes;
}

std::optional<Message> Deserialize(const std::vector<std::uint8_t>& bytes) {
  Reader r(bytes);
  Message message;
  std::uint8_t tag = 0;
  if (!r.U32(&message.sender) || !r.U32(&message.receiver) ||
      !r.U32(&message.incarnation) || !r.U8(&tag)) {
    return std::nullopt;
  }
  if (tag == kTagLatencyUpdate) {
    LatencyUpdate update;
    std::uint32_t task = 0, count = 0;
    if (!r.U32(&task) || !r.U32(&count)) return std::nullopt;
    update.task = TaskId(task);
    update.subtasks.reserve(count);
    update.latencies_ms.reserve(count);
    for (std::uint32_t i = 0; i < count; ++i) {
      std::uint32_t subtask = 0;
      double latency = 0.0;
      if (!r.U32(&subtask) || !r.F64(&latency)) return std::nullopt;
      update.subtasks.push_back(SubtaskId(subtask));
      update.latencies_ms.push_back(latency);
    }
    message.payload = std::move(update);
  } else if (tag == kTagResourcePriceUpdate) {
    ResourcePriceUpdate update;
    std::uint32_t resource = 0;
    std::uint8_t congested = 0;
    if (!r.U32(&resource) || !r.F64(&update.mu) || !r.U32(&update.epoch) ||
        !r.U8(&congested) || congested > 1) {
      return std::nullopt;
    }
    update.resource = ResourceId(resource);
    update.congested = congested != 0;
    message.payload = std::move(update);
  } else if (tag == kTagRepairRequest) {
    RepairRequest request;
    std::uint32_t resource = 0;
    if (!r.U32(&resource)) return std::nullopt;
    request.resource = ResourceId(resource);
    message.payload = std::move(request);
  } else if (tag == kTagRepairResponse) {
    RepairResponse repair;
    std::uint32_t resource = 0, task = 0, count = 0;
    std::uint8_t congested = 0;
    if (!r.U32(&resource) || !r.U32(&task) || !r.F64(&repair.mu) ||
        !r.U32(&repair.epoch) || !r.U8(&congested) || congested > 1 ||
        !r.U32(&count)) {
      return std::nullopt;
    }
    repair.resource = ResourceId(resource);
    repair.task = TaskId(task);
    repair.congested = congested != 0;
    repair.subtasks.reserve(count);
    repair.latencies_ms.reserve(count);
    for (std::uint32_t i = 0; i < count; ++i) {
      std::uint32_t subtask = 0;
      double latency = 0.0;
      if (!r.U32(&subtask) || !r.F64(&latency)) return std::nullopt;
      repair.subtasks.push_back(SubtaskId(subtask));
      repair.latencies_ms.push_back(latency);
    }
    message.payload = std::move(repair);
  } else if (tag == kTagShardLatencyUpdate) {
    ShardLatencyUpdate update;
    std::uint32_t task = 0;
    if (!r.U32(&task) || !r.U32(&update.shard) || !r.U32(&update.count)) {
      return std::nullopt;
    }
    update.task = TaskId(task);
    // The payload runs to the end of the message; validate it fully (a
    // structurally-broken payload must be rejected here, not at apply time).
    const std::size_t remaining = r.Remaining();
    update.payload = WireSlice::Copy(r.Here(), remaining);
    std::vector<double> scratch;
    if (!DecodeShardLatencyUpdate(update, &scratch)) return std::nullopt;
    r.Skip(remaining);
    message.payload = std::move(update);
  } else if (tag == kTagShardPriceUpdate) {
    ShardPriceUpdate update;
    if (!r.U32(&update.shard) || !r.U32(&update.epoch) ||
        !r.U32(&update.count)) {
      return std::nullopt;
    }
    const std::size_t remaining = r.Remaining();
    update.payload = WireSlice::Copy(r.Here(), remaining);
    std::vector<double> scratch;
    ShardPriceBitsets bits;
    if (!DecodeShardPriceUpdate(update, &scratch, &bits)) {
      return std::nullopt;
    }
    r.Skip(remaining);
    message.payload = std::move(update);
  } else {
    return std::nullopt;
  }
  if (!r.AtEnd()) return std::nullopt;  // trailing garbage
  return message;
}

std::size_t WireSize(const Message& message) {
  constexpr std::size_t kHeader = 4 + 4 + 4 + 1;  // sender/receiver/inc/tag
  if (const auto* latency = std::get_if<LatencyUpdate>(&message.payload)) {
    return kHeader + 4 + 4 + latency->subtasks.size() * 12;
  }
  if (std::holds_alternative<ResourcePriceUpdate>(message.payload)) {
    return kHeader + 4 + 8 + 4 + 1;
  }
  if (std::holds_alternative<RepairRequest>(message.payload)) {
    return kHeader + 4;
  }
  if (const auto* shard_latency =
          std::get_if<ShardLatencyUpdate>(&message.payload)) {
    return kHeader + 4 + 4 + 4 + shard_latency->payload.size();
  }
  if (const auto* shard_price =
          std::get_if<ShardPriceUpdate>(&message.payload)) {
    return kHeader + 4 + 4 + 4 + shard_price->payload.size();
  }
  const auto& repair = std::get<RepairResponse>(message.payload);
  return kHeader + 4 + 4 + 8 + 4 + 1 + 4 + repair.subtasks.size() * 12;
}

}  // namespace lla::net
