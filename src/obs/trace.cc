#include "obs/trace.h"

#include <cassert>

namespace lla::obs {
namespace {

void WriteJsonString(std::FILE* file, const std::string& s) {
  std::fputc('"', file);
  for (char c : s) {
    if (c == '"' || c == '\\') std::fputc('\\', file);
    if (static_cast<unsigned char>(c) < 0x20) {
      std::fprintf(file, "\\u%04x", c);
    } else {
      std::fputc(c, file);
    }
  }
  std::fputc('"', file);
}

void WriteJsonArray(std::FILE* file, const char* key,
                    const std::vector<double>& values) {
  std::fprintf(file, ",\"%s\":[", key);
  for (std::size_t i = 0; i < values.size(); ++i) {
    std::fprintf(file, i == 0 ? "%.17g" : ",%.17g", values[i]);
  }
  std::fputc(']', file);
}

std::FILE* OpenOrStdout(const std::string& path, bool* owns) {
  if (path == "-") {
    *owns = false;
    return stdout;
  }
  *owns = true;
  return std::fopen(path.c_str(), "w");
}

}  // namespace

JsonlTraceSink::JsonlTraceSink(const std::string& path) {
  file_ = OpenOrStdout(path, &owns_file_);
}

JsonlTraceSink::JsonlTraceSink(std::FILE* file)
    : file_(file), owns_file_(false) {}

JsonlTraceSink::~JsonlTraceSink() {
  if (file_ != nullptr && owns_file_) std::fclose(file_);
}

void JsonlTraceSink::OnRunBegin(const RunInfo& info) {
  run_label_ = info.label;
  if (file_ == nullptr) return;
  std::fputs("{\"type\":\"run_begin\",\"run\":", file_);
  WriteJsonString(file_, info.label);
  std::fprintf(file_, ",\"resources\":%zu,\"paths\":%zu}\n",
               info.resource_count, info.path_count);
}

void JsonlTraceSink::OnIteration(const IterationTrace& trace) {
  if (file_ == nullptr) return;
  std::fputs("{\"type\":\"iteration\",\"run\":", file_);
  WriteJsonString(file_, run_label_);
  std::fprintf(file_, ",\"iteration\":%d", trace.iteration);
  if (trace.at_ms >= 0.0) std::fprintf(file_, ",\"at_ms\":%.17g", trace.at_ms);
  std::fprintf(file_,
               ",\"total_utility\":%.17g,\"feasible\":%s"
               ",\"max_resource_excess\":%.17g,\"max_path_ratio\":%.17g",
               trace.total_utility, trace.feasible ? "true" : "false",
               trace.max_resource_excess, trace.max_path_ratio);
  WriteJsonArray(file_, "resource_share_sums", trace.resource_share_sums);
  WriteJsonArray(file_, "resource_mu", trace.resource_mu);
  WriteJsonArray(file_, "resource_step", trace.resource_step);
  WriteJsonArray(file_, "path_latencies", trace.path_latencies);
  WriteJsonArray(file_, "path_lambda", trace.path_lambda);
  WriteJsonArray(file_, "path_step", trace.path_step);
  // Active-set sparsity, present only when the producer runs incrementally.
  if (trace.tasks_solved >= 0) {
    std::fprintf(file_, ",\"tasks_solved\":%d,\"subtasks_solved\":%d",
                 trace.tasks_solved, trace.subtasks_solved);
  }
  if (trace.active_mu >= 0) {
    std::fprintf(file_, ",\"active_mu\":%d,\"active_lambda\":%d",
                 trace.active_mu, trace.active_lambda);
  }
  // Momentum diagnostics, present only under accelerated dynamics.
  if (trace.momentum_restarts >= 0) {
    std::fprintf(file_, ",\"momentum_restarts\":%d,\"effective_beta\":%.17g",
                 trace.momentum_restarts, trace.effective_beta);
  }
  std::fputs("}\n", file_);
}

void JsonlTraceSink::OnEvent(const TraceEvent& event) {
  if (file_ == nullptr) return;
  std::fputs("{\"type\":\"event\",\"event\":", file_);
  WriteJsonString(file_, event.type);
  std::fputs(",\"run\":", file_);
  WriteJsonString(file_, run_label_);
  for (const auto& [key, value] : event.fields) {
    std::fputs(",", file_);
    WriteJsonString(file_, key);
    std::fprintf(file_, ":%.17g", value);
  }
  std::fputs("}\n", file_);
}

void JsonlTraceSink::OnRunEnd() {
  if (file_ != nullptr) {
    std::fputs("{\"type\":\"run_end\",\"run\":", file_);
    WriteJsonString(file_, run_label_);
    std::fputs("}\n", file_);
    std::fflush(file_);
  }
  run_label_.clear();
}

CsvTraceSink::CsvTraceSink(const std::string& path) {
  file_ = OpenOrStdout(path, &owns_file_);
}

CsvTraceSink::CsvTraceSink(std::FILE* file) : file_(file), owns_file_(false) {}

CsvTraceSink::~CsvTraceSink() {
  if (file_ != nullptr && owns_file_) std::fclose(file_);
}

void CsvTraceSink::WriteHeaderOnce() {
  if (header_written_) return;
  header_written_ = true;
  std::fputs(
      "run,iteration,at_ms,total_utility,feasible,max_resource_excess,"
      "max_path_ratio\n",
      file_);
}

void CsvTraceSink::OnRunBegin(const RunInfo& info) { run_label_ = info.label; }

void CsvTraceSink::OnIteration(const IterationTrace& trace) {
  if (file_ == nullptr) return;
  WriteHeaderOnce();
  // Labels are embedded unquoted; keep them free of commas.
  std::fprintf(file_, "%s,%d,%.17g,%.17g,%d,%.17g,%.17g\n",
               run_label_.c_str(), trace.iteration, trace.at_ms,
               trace.total_utility, trace.feasible ? 1 : 0,
               trace.max_resource_excess, trace.max_path_ratio);
}

RingBufferTraceSink::RingBufferTraceSink(std::size_t capacity)
    : capacity_(capacity) {
  assert(capacity > 0);
  buffer_.reserve(capacity);
}

void RingBufferTraceSink::OnIteration(const IterationTrace& trace) {
  ++total_received_;
  if (buffer_.size() < capacity_) {
    buffer_.push_back(trace);
    return;
  }
  buffer_[next_] = trace;
  next_ = (next_ + 1) % capacity_;
}

const IterationTrace& RingBufferTraceSink::at(std::size_t i) const {
  assert(i < buffer_.size());
  if (buffer_.size() < capacity_) return buffer_[i];
  return buffer_[(next_ + i) % capacity_];
}

}  // namespace lla::obs
