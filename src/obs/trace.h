// Structured iteration tracing for the LLA engine and runtime.
//
// The paper's evidence is trajectories — utility vs. iteration (Figs. 5-6),
// share sums oscillating under infeasibility (Fig. 7), shares converging
// under error correction (Fig. 8).  A TraceSink receives those trajectories
// as structured records instead of every bench hand-rolling its own
// printing: the engine (and the distributed coordinator's monitor) emits one
// IterationTrace per step, sourced from the already-fused StepWorkspace
// arrays, so tracing adds no extra evaluation sweeps.
//
// Contract (see DESIGN.md §7.4):
//   * A null sink pointer disables tracing entirely — the hot path performs
//     one pointer comparison and nothing else.
//   * Sinks must never mutate producer state; an attached sink must leave
//     trajectories bit-identical to an untraced run (pinned by
//     trace_property_test).
//   * The IterationTrace passed to OnIteration is a reused buffer; sinks
//     must copy what they keep (RingBufferTraceSink does).
//   * OnRunBegin/OnRunEnd bracket one labelled run; producers that do not
//     know a label (the engine) emit iterations only and leave run
//     bracketing to the caller (benches, the CLI).
#pragma once

#include <cstdio>
#include <string>
#include <utility>
#include <vector>

namespace lla::obs {

/// Metadata for one labelled run (one engine/coordinator lifetime, one bench
/// configuration, ...).
struct RunInfo {
  std::string label;
  std::size_t resource_count = 0;
  std::size_t path_count = 0;
};

/// One iteration of the price iteration, as the figures plot it.  Vector
/// fields are indexed by the workload's ResourceId / PathId.  Prices are the
/// post-update values (the dual state entering the next iteration); share
/// sums and latencies are the ones this iteration's allocation produced.
struct IterationTrace {
  int iteration = 0;
  /// Virtual bus time for distributed rounds; < 0 for the in-process engine.
  double at_ms = -1.0;
  double total_utility = 0.0;
  bool feasible = false;
  double max_resource_excess = 0.0;
  double max_path_ratio = 0.0;
  std::vector<double> resource_share_sums;
  std::vector<double> resource_mu;
  std::vector<double> resource_step;  ///< step size used per resource
  std::vector<double> path_latencies;
  std::vector<double> path_lambda;
  std::vector<double> path_step;      ///< step size used per path
  /// Per-step sparsity of the active-set stepping mode: how many tasks /
  /// subtasks this iteration actually re-solved, and the number of nonzero
  /// mu/lambda after the price update.  -1 (the default) means the producer
  /// does not run in active-set mode; sinks omit negative values.
  int tasks_solved = -1;
  int subtasks_solved = -1;
  int active_mu = -1;
  int active_lambda = -1;
  /// Accelerated price dynamics (core/price_dynamics.h): adaptive restarts
  /// fired this step and the mean momentum coefficient actually applied
  /// across computed updates, beta * (1 - restarts / updates).  A diverging
  /// momentum run is diagnosable from JSONL alone: effective_beta pinned
  /// well below the configured beta means restarts fire every step.  -1
  /// (the default) means the producer runs plain dynamics; sinks omit
  /// negative values.
  int momentum_restarts = -1;
  double effective_beta = -1.0;
};

/// A free-form record for series that are not price iterations (e.g. the
/// Fig. 8 per-epoch shares): a type tag plus flat numeric fields.
struct TraceEvent {
  std::string type;
  std::vector<std::pair<std::string, double>> fields;
};

/// Receiver interface.  Default implementations ignore everything except
/// OnIteration, so sinks only override what they store.
class TraceSink {
 public:
  virtual ~TraceSink() = default;
  virtual void OnRunBegin(const RunInfo& /*info*/) {}
  virtual void OnIteration(const IterationTrace& trace) = 0;
  virtual void OnEvent(const TraceEvent& /*event*/) {}
  virtual void OnRunEnd() {}
};

/// Streams one JSON object per line (JSONL).  Every record carries a "type"
/// ("run_begin" | "iteration" | "event" | "run_end") and, for iterations and
/// events, the label of the enclosing run — so a file holding several runs
/// (the Fig. 5 gamma sweep) can be split back into its series.
class JsonlTraceSink final : public TraceSink {
 public:
  /// Opens `path` for writing ("-" streams to stdout).  ok() reports
  /// whether the file opened; a failed sink drops all records.
  explicit JsonlTraceSink(const std::string& path);
  /// Streams to an externally owned FILE* (not closed on destruction).
  explicit JsonlTraceSink(std::FILE* file);
  ~JsonlTraceSink() override;

  JsonlTraceSink(const JsonlTraceSink&) = delete;
  JsonlTraceSink& operator=(const JsonlTraceSink&) = delete;

  bool ok() const { return file_ != nullptr; }

  void OnRunBegin(const RunInfo& info) override;
  void OnIteration(const IterationTrace& trace) override;
  void OnEvent(const TraceEvent& event) override;
  void OnRunEnd() override;

 private:
  std::FILE* file_ = nullptr;
  bool owns_file_ = false;
  std::string run_label_;
};

/// Writes the scalar iteration fields as CSV (one header, one row per
/// iteration; vector fields are omitted — use JSONL for those).  Events are
/// ignored.
class CsvTraceSink final : public TraceSink {
 public:
  explicit CsvTraceSink(const std::string& path);
  explicit CsvTraceSink(std::FILE* file);
  ~CsvTraceSink() override;

  CsvTraceSink(const CsvTraceSink&) = delete;
  CsvTraceSink& operator=(const CsvTraceSink&) = delete;

  bool ok() const { return file_ != nullptr; }

  void OnRunBegin(const RunInfo& info) override;
  void OnIteration(const IterationTrace& trace) override;

 private:
  void WriteHeaderOnce();

  std::FILE* file_ = nullptr;
  bool owns_file_ = false;
  bool header_written_ = false;
  std::string run_label_;
};

/// Keeps the last `capacity` IterationTrace records in memory (deep copies).
/// The in-process sink for tests and for attaching diagnostics to a live
/// engine without I/O.
class RingBufferTraceSink final : public TraceSink {
 public:
  explicit RingBufferTraceSink(std::size_t capacity);

  void OnIteration(const IterationTrace& trace) override;

  /// Number of records currently held (<= capacity).
  std::size_t size() const { return buffer_.size(); }
  /// Total records ever received (>= size()).
  std::uint64_t total_received() const { return total_received_; }
  /// i = 0 is the oldest retained record, i = size() - 1 the newest.
  const IterationTrace& at(std::size_t i) const;

 private:
  std::size_t capacity_;
  std::size_t next_ = 0;  ///< write cursor once the buffer is full
  std::uint64_t total_received_ = 0;
  std::vector<IterationTrace> buffer_;
};

}  // namespace lla::obs
