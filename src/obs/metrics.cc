#include "obs/metrics.h"

#include <cstdio>

namespace lla::obs {

Counter* MetricRegistry::GetCounter(std::string_view name) {
  const auto it = counter_index_.find(std::string(name));
  if (it != counter_index_.end()) return &counters_[it->second];
  counter_index_.emplace(std::string(name), counters_.size());
  counter_names_.emplace_back(name);
  counters_.emplace_back();
  return &counters_.back();
}

Timer* MetricRegistry::GetTimer(std::string_view name) {
  const auto it = timer_index_.find(std::string(name));
  if (it != timer_index_.end()) return &timers_[it->second];
  timer_index_.emplace(std::string(name), timers_.size());
  timer_names_.emplace_back(name);
  timers_.emplace_back();
  return &timers_.back();
}

MetricsSnapshot MetricRegistry::Snapshot() const {
  MetricsSnapshot snapshot;
  snapshot.counters.reserve(counters_.size());
  for (std::size_t i = 0; i < counters_.size(); ++i) {
    snapshot.counters.push_back({counter_names_[i], counters_[i].value()});
  }
  snapshot.timers.reserve(timers_.size());
  for (std::size_t i = 0; i < timers_.size(); ++i) {
    snapshot.timers.push_back({timer_names_[i], timers_[i].count(),
                               timers_[i].total_ms(), timers_[i].max_ms()});
  }
  return snapshot;
}

std::string MetricsSnapshot::RenderText() const {
  std::size_t width = 0;
  for (const CounterEntry& c : counters) width = std::max(width, c.name.size());
  for (const TimerEntry& t : timers) width = std::max(width, t.name.size());

  std::string out;
  char line[256];
  for (const CounterEntry& c : counters) {
    std::snprintf(line, sizeof(line), "%-*s %llu\n", static_cast<int>(width),
                  c.name.c_str(), static_cast<unsigned long long>(c.value));
    out += line;
  }
  for (const TimerEntry& t : timers) {
    const double mean =
        t.count == 0 ? 0.0 : t.total_ms / static_cast<double>(t.count);
    std::snprintf(line, sizeof(line),
                  "%-*s count=%llu total=%.3fms mean=%.6fms max=%.6fms\n",
                  static_cast<int>(width), t.name.c_str(),
                  static_cast<unsigned long long>(t.count), t.total_ms, mean,
                  t.max_ms);
    out += line;
  }
  return out;
}

namespace {

void AppendJsonString(std::string* out, const std::string& s) {
  out->push_back('"');
  for (char c : s) {
    if (c == '"' || c == '\\') out->push_back('\\');
    if (static_cast<unsigned char>(c) < 0x20) {
      char buf[8];
      std::snprintf(buf, sizeof(buf), "\\u%04x", c);
      *out += buf;
    } else {
      out->push_back(c);
    }
  }
  out->push_back('"');
}

}  // namespace

std::string MetricsSnapshot::RenderJson() const {
  std::string out = "{\"counters\":{";
  char buf[128];
  for (std::size_t i = 0; i < counters.size(); ++i) {
    if (i != 0) out.push_back(',');
    AppendJsonString(&out, counters[i].name);
    std::snprintf(buf, sizeof(buf), ":%llu",
                  static_cast<unsigned long long>(counters[i].value));
    out += buf;
  }
  out += "},\"timers\":{";
  for (std::size_t i = 0; i < timers.size(); ++i) {
    if (i != 0) out.push_back(',');
    AppendJsonString(&out, timers[i].name);
    const double mean = timers[i].count == 0
                            ? 0.0
                            : timers[i].total_ms /
                                  static_cast<double>(timers[i].count);
    std::snprintf(buf, sizeof(buf),
                  ":{\"count\":%llu,\"total_ms\":%.17g,\"mean_ms\":%.17g,"
                  "\"max_ms\":%.17g}",
                  static_cast<unsigned long long>(timers[i].count),
                  timers[i].total_ms, mean, timers[i].max_ms);
    out += buf;
  }
  out += "}}";
  return out;
}

}  // namespace lla::obs
