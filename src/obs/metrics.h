// Counters and timers for the LLA engine, bus, coordinator and DES
// substrate.
//
// A MetricRegistry hands out stable Counter*/Timer* handles by name;
// instrumented components resolve their handles once (at construction /
// registration) and the hot path touches only the handle — an integer add
// for counters, two steady_clock reads for a scoped timer.  A null registry
// pointer disables everything: components keep null handles and the guards
// compile down to one pointer test (the overhead contract of DESIGN.md
// §7.4).
//
// Naming scheme: `<component>.<metric>` (engine.steps, bus.sent,
// coordinator.rounds, sim.jobs_completed); per-entity metrics append the
// entity (`bus.endpoint.<name>.sent`).  Phase timers use the phase name
// (engine.solve, engine.evaluate, engine.price_update).
//
// Counters are relaxed-atomic so bus handlers may increment them from the
// parallel delivery phase (DESIGN.md §7.11); everything else (timers, the
// registry itself) must still be driven from the owning thread.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <deque>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace lla::obs {

/// Monotonic event count.  Increments are relaxed atomics: safe from
/// concurrent delivery workers, and the summed value is deterministic (the
/// order of additions does not matter); reads from the owning thread after
/// a join observe every increment.
class Counter {
 public:
  void Increment(std::uint64_t delta = 1) {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  std::uint64_t value() const {
    return value_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<std::uint64_t> value_{0};
};

/// Accumulated wall-clock duration statistics.
class Timer {
 public:
  void RecordMs(double elapsed_ms) {
    ++count_;
    total_ms_ += elapsed_ms;
    if (elapsed_ms > max_ms_) max_ms_ = elapsed_ms;
  }
  std::uint64_t count() const { return count_; }
  double total_ms() const { return total_ms_; }
  double max_ms() const { return max_ms_; }
  double mean_ms() const {
    return count_ == 0 ? 0.0 : total_ms_ / static_cast<double>(count_);
  }

 private:
  std::uint64_t count_ = 0;
  double total_ms_ = 0.0;
  double max_ms_ = 0.0;
};

/// Records the lifetime of a scope into `timer`; a null timer skips the
/// clock reads entirely.
class ScopedTimer {
 public:
  explicit ScopedTimer(Timer* timer) : timer_(timer) {
    if (timer_ != nullptr) start_ = std::chrono::steady_clock::now();
  }
  ~ScopedTimer() {
    if (timer_ != nullptr) {
      const auto stop = std::chrono::steady_clock::now();
      timer_->RecordMs(
          std::chrono::duration<double, std::milli>(stop - start_).count());
    }
  }
  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

 private:
  Timer* timer_;
  std::chrono::steady_clock::time_point start_;
};

/// Point-in-time copy of every metric, with text and JSON rendering.
struct MetricsSnapshot {
  struct CounterEntry {
    std::string name;
    std::uint64_t value = 0;
  };
  struct TimerEntry {
    std::string name;
    std::uint64_t count = 0;
    double total_ms = 0.0;
    double max_ms = 0.0;
  };
  std::vector<CounterEntry> counters;  ///< registration order
  std::vector<TimerEntry> timers;      ///< registration order

  /// Aligned `name value` lines (counters), then timer lines with
  /// count/total/mean/max.
  std::string RenderText() const;
  /// {"counters": {name: value, ...}, "timers": {name: {...}, ...}}
  std::string RenderJson() const;
};

/// Owner of all counters and timers.  Handles returned by GetCounter /
/// GetTimer stay valid for the registry's lifetime; repeated lookups of the
/// same name return the same handle.
class MetricRegistry {
 public:
  Counter* GetCounter(std::string_view name);
  Timer* GetTimer(std::string_view name);
  MetricsSnapshot Snapshot() const;

 private:
  // deques: stable addresses under growth.
  std::deque<Counter> counters_;
  std::deque<Timer> timers_;
  std::vector<std::string> counter_names_;
  std::vector<std::string> timer_names_;
  std::unordered_map<std::string, std::size_t> counter_index_;
  std::unordered_map<std::string, std::size_t> timer_index_;
};

}  // namespace lla::obs
