// Offline deadline-slicing baselines (paper Sec. 7, "Deadline slicing").
//
// These assign each subtask a latency budget by slicing the task's
// end-to-end critical time, without prices or feedback:
//
//   * EqualSlice — Bettati & Liu style: every subtask on a path gets an
//     equal slice of the critical time (per subtask: C_i / longest path
//     through it).
//   * ProportionalSlice — slices proportional to WCET (a common practical
//     refinement: heavier subtasks get proportionally more budget).
//   * LaxityFairSlice — BST-flavoured: latency = work + an equal share of
//     the critical path's laxity (C - total work along the worst path),
//     distributing slack evenly instead of budgets.
//
// All three ignore resource capacities, so their assignments can overload
// resources that LLA would price; EvaluateBaseline reports both utility and
// feasibility so benches can show the comparison honestly.  A feasibility
// repair pass (scale latencies up uniformly per resource until Eq. 3 holds;
// deadlines permitting) is available to give the baselines their best shot.
#pragma once

#include <string>
#include <vector>

#include "common/expected.h"
#include "model/evaluation.h"
#include "model/latency_model.h"
#include "model/workload.h"

namespace lla::baselines {

enum class SlicingPolicy { kEqual, kWcetProportional, kLaxityFair };

const char* ToString(SlicingPolicy policy);

/// Computes the baseline latency assignment (no resource awareness).
Assignment Slice(const Workload& workload, SlicingPolicy policy);

/// Scales latencies up (never above what the critical times allow) until
/// every resource constraint is met, if possible.  Returns the repaired
/// assignment, or an error when the workload cannot be repaired this way.
Expected<Assignment> RepairFeasibility(const Workload& workload,
                                       const LatencyModel& model,
                                       const Assignment& latencies);

struct BaselineResult {
  SlicingPolicy policy;
  Assignment latencies;
  double utility = 0.0;
  bool feasible = false;
  bool repaired = false;  ///< true if RepairFeasibility was applied
  FeasibilityReport report;
};

/// Slices, optionally repairs, and evaluates against the given variant.
BaselineResult EvaluateBaseline(const Workload& workload,
                                const LatencyModel& model,
                                SlicingPolicy policy, UtilityVariant variant,
                                bool repair = true);

}  // namespace lla::baselines
