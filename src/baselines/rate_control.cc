#include "baselines/rate_control.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace lla::baselines {
namespace {

/// Utilization of every resource at the given task rates.
std::vector<double> Utilizations(const Workload& workload,
                                 const std::vector<double>& rates) {
  std::vector<double> utilization(workload.resource_count(), 0.0);
  for (const SubtaskInfo& sub : workload.subtasks()) {
    utilization[sub.resource.value()] +=
        rates[sub.task.value()] * sub.wcet_ms / 1000.0;
  }
  return utilization;
}

}  // namespace

RateControlResult RunRateControl(const Workload& workload,
                                 const LatencyModel& model,
                                 UtilityVariant variant,
                                 RateControlConfig config) {
  assert(config.utilization_setpoint > 0.0);
  RateControlResult result;

  std::vector<double> nominal(workload.task_count());
  for (const TaskInfo& task : workload.tasks()) {
    nominal[task.id.value()] = task.trigger.MeanRatePerSecond();
  }
  result.rates = nominal;

  // Proportional feedback on the bottleneck utilization seen by each task.
  for (int iteration = 0; iteration < config.max_iterations; ++iteration) {
    const std::vector<double> utilization =
        Utilizations(workload, result.rates);
    double max_update = 0.0;
    for (const TaskInfo& task : workload.tasks()) {
      double bottleneck = 0.0;
      for (SubtaskId sid : task.subtasks) {
        const ResourceId r = workload.subtask(sid).resource;
        // Normalize by the capacity so partially-available resources are
        // handled like full ones.
        bottleneck = std::max(
            bottleneck,
            utilization[r.value()] / workload.resource(r).capacity);
      }
      const double error = config.utilization_setpoint - bottleneck;
      const std::size_t t = task.id.value();
      const double updated = std::clamp(
          result.rates[t] * (1.0 + config.gain * error),
          config.rate_min_factor * nominal[t],
          config.rate_max_factor * nominal[t]);
      max_update = std::max(
          max_update, std::fabs(updated - result.rates[t]) /
                          std::max(nominal[t], 1e-12));
      result.rates[t] = updated;
    }
    result.iterations = iteration + 1;
    if (max_update < config.tolerance) {
      result.converged = true;
      break;
    }
  }

  result.utilization = Utilizations(workload, result.rates);

  // Map controlled rates to utilization-proportional shares and implied
  // latencies.
  result.latencies.assign(workload.subtask_count(), 0.0);
  for (const ResourceInfo& resource : workload.resources()) {
    double demand = 0.0;
    for (SubtaskId sid : resource.subtasks) {
      const SubtaskInfo& sub = workload.subtask(sid);
      demand += result.rates[sub.task.value()] * sub.wcet_ms / 1000.0;
    }
    for (SubtaskId sid : resource.subtasks) {
      const SubtaskInfo& sub = workload.subtask(sid);
      const double fraction =
          demand > 0.0
              ? (result.rates[sub.task.value()] * sub.wcet_ms / 1000.0) /
                    demand
              : 1.0 / static_cast<double>(resource.subtasks.size());
      const double share = std::max(resource.capacity * fraction, 1e-9);
      result.latencies[sid.value()] =
          model.share(sid).LatencyForShare(std::min(share, 1.0));
    }
  }

  result.utility = TotalUtility(workload, result.latencies, variant);
  const FeasibilityReport report =
      CheckFeasibility(workload, model, result.latencies, 1e-6);
  result.deadlines_met = report.max_path_ratio <= 1.0 + 1e-6;

  double ratio_sum = 0.0;
  for (const TaskInfo& task : workload.tasks()) {
    ratio_sum += result.rates[task.id.value()] /
                 std::max(nominal[task.id.value()], 1e-12);
  }
  result.throughput_ratio = ratio_sum / workload.task_count();
  return result;
}

}  // namespace lla::baselines
