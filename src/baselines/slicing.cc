#include "baselines/slicing.h"

#include <algorithm>
#include <cassert>
#include <limits>

namespace lla::baselines {
namespace {

/// Per-subtask maxima over the paths containing it: hop count and summed
/// work, used to make every slicing policy deadline-safe by construction.
struct PathMaxima {
  std::vector<int> max_hops;       // by SubtaskId
  std::vector<double> max_work;    // by SubtaskId
  std::vector<double> min_laxity_share;  // laxity / hops, minimized
};

PathMaxima ComputeMaxima(const Workload& workload) {
  PathMaxima maxima;
  maxima.max_hops.assign(workload.subtask_count(), 1);
  maxima.max_work.assign(workload.subtask_count(), 0.0);
  maxima.min_laxity_share.assign(workload.subtask_count(),
                                 std::numeric_limits<double>::infinity());
  for (const PathInfo& path : workload.paths()) {
    const int hops = static_cast<int>(path.subtasks.size());
    double path_work = 0.0;
    for (SubtaskId sid : path.subtasks) {
      path_work += workload.subtask(sid).work_ms;
    }
    const double laxity_share =
        (path.critical_time_ms - path_work) / hops;
    for (SubtaskId sid : path.subtasks) {
      const std::size_t s = sid.value();
      maxima.max_hops[s] = std::max(maxima.max_hops[s], hops);
      maxima.max_work[s] = std::max(maxima.max_work[s], path_work);
      maxima.min_laxity_share[s] =
          std::min(maxima.min_laxity_share[s], laxity_share);
    }
  }
  return maxima;
}

}  // namespace

const char* ToString(SlicingPolicy policy) {
  switch (policy) {
    case SlicingPolicy::kEqual:
      return "equal-slice";
    case SlicingPolicy::kWcetProportional:
      return "wcet-proportional";
    case SlicingPolicy::kLaxityFair:
      return "laxity-fair";
  }
  return "?";
}

Assignment Slice(const Workload& workload, SlicingPolicy policy) {
  const PathMaxima maxima = ComputeMaxima(workload);
  Assignment latencies(workload.subtask_count(), 0.0);
  for (const SubtaskInfo& sub : workload.subtasks()) {
    const std::size_t s = sub.id.value();
    const double critical =
        workload.task(sub.task).critical_time_ms;
    double latency = 0.0;
    switch (policy) {
      case SlicingPolicy::kEqual:
        latency = critical / maxima.max_hops[s];
        break;
      case SlicingPolicy::kWcetProportional:
        latency = critical * sub.work_ms / maxima.max_work[s];
        break;
      case SlicingPolicy::kLaxityFair:
        latency = sub.work_ms + maxima.min_laxity_share[s];
        break;
    }
    // A degenerate (negative-laxity) slice still needs a positive latency.
    latencies[s] = std::max(latency, 0.05 * sub.work_ms);
  }
  return latencies;
}

Expected<Assignment> RepairFeasibility(const Workload& workload,
                                       const LatencyModel& model,
                                       const Assignment& latencies) {
  Assignment repaired = latencies;
  for (int iteration = 0; iteration < 100; ++iteration) {
    bool any_overloaded = false;
    for (const ResourceInfo& resource : workload.resources()) {
      const double sum =
          ResourceShareSum(workload, model, resource.id, repaired);
      if (sum <= resource.capacity) continue;
      any_overloaded = true;
      // Inflate this resource's latencies; for the WCET/lag model the
      // share sum scales down by exactly the same factor.
      const double factor = (sum / resource.capacity) * (1.0 + 1e-9);
      for (SubtaskId sid : resource.subtasks) {
        repaired[sid.value()] *= factor;
      }
    }
    if (!any_overloaded) {
      const auto report = CheckFeasibility(workload, model, repaired, 1e-9);
      if (report.feasible) return repaired;
      return Expected<Assignment>::Error(
          "RepairFeasibility: resource repair pushed a path past its "
          "critical time (workload too tight for slicing baselines)");
    }
  }
  return Expected<Assignment>::Error(
      "RepairFeasibility: did not reach feasibility in 100 passes");
}

BaselineResult EvaluateBaseline(const Workload& workload,
                                const LatencyModel& model,
                                SlicingPolicy policy, UtilityVariant variant,
                                bool repair) {
  BaselineResult result;
  result.policy = policy;
  result.latencies = Slice(workload, policy);
  result.report = CheckFeasibility(workload, model, result.latencies, 1e-9);
  if (!result.report.feasible && repair) {
    auto repaired = RepairFeasibility(workload, model, result.latencies);
    if (repaired.ok()) {
      result.latencies = std::move(repaired).value();
      result.repaired = true;
      result.report = CheckFeasibility(workload, model, result.latencies,
                                       1e-9);
    }
  }
  result.feasible = result.report.feasible;
  result.utility = TotalUtility(workload, result.latencies, variant);
  return result;
}

}  // namespace lla::baselines
