// Utilization-based rate control, the paper's closest related work
// (Sec. 7: Lu et al. [20, 31], "End-to-end utilization control").
//
// Instead of assigning latencies, this family adjusts task *invocation
// rates* by feedback until every resource's utilization sits at a safe
// setpoint.  It is complementary to LLA (a form of admission/load control):
// it trades throughput for schedulability and leaves latency outcomes to
// the underlying scheduler.  We implement a proportional EUC-style
// controller so benches can compare the two philosophies on the same
// workloads:
//
//   u_r(rates) = sum over subtasks on r of rate_i * wcet_s / 1000
//   per iteration, each task nudges its rate toward the point where the
//   most-utilized resource it touches hits the setpoint, clamped to
//   [rate_min_factor, rate_max_factor] x nominal.
//
// For evaluation the controlled rates are mapped to proportional shares
// (each subtask receives capacity in proportion to its utilization demand)
// and the implied PS latencies are scored with the same utility/feasibility
// machinery as LLA.
#pragma once

#include <vector>

#include "model/evaluation.h"
#include "model/latency_model.h"
#include "model/workload.h"

namespace lla::baselines {

struct RateControlConfig {
  /// Target utilization per resource (the classic schedulable-bound
  /// setpoint; EUC papers use values near 0.7).
  double utilization_setpoint = 0.7;
  /// Proportional feedback gain on the relative utilization error.
  double gain = 0.5;
  int max_iterations = 300;
  double tolerance = 1e-6;
  /// Rate bounds relative to the nominal (trigger) rate: tasks may be
  /// throttled down to the min factor, never boosted past the max.
  double rate_min_factor = 0.1;
  double rate_max_factor = 1.0;
};

struct RateControlResult {
  /// Controlled invocation rate per task (per second).
  std::vector<double> rates;
  /// Final utilization per resource.
  std::vector<double> utilization;
  /// Implied latencies under utilization-proportional shares.
  Assignment latencies;
  double utility = 0.0;
  bool deadlines_met = false;
  /// Mean of rate / nominal-rate over tasks (1.0 = full throughput).
  double throughput_ratio = 0.0;
  int iterations = 0;
  bool converged = false;
};

RateControlResult RunRateControl(const Workload& workload,
                                 const LatencyModel& model,
                                 UtilityVariant variant,
                                 RateControlConfig config = {});

}  // namespace lla::baselines
