#include "sim/system_sim.h"

#include <algorithm>
#include <cassert>
#include <limits>
#include <unordered_map>

#include "common/rng.h"

namespace lla::sim {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

/// One in-flight instance of a task (a job set).
struct JobSet {
  TaskId task;
  double released_ms = 0.0;
  /// Remaining predecessor count per local subtask; 0 = eligible.
  std::vector<int> pending_preds;
  int remaining_end_subtasks = 0;
};

struct JobRef {
  std::uint64_t job_set = 0;
  int local_subtask = 0;
};

}  // namespace

SystemSimulator::SystemSimulator(const Workload& workload, SimConfig config)
    : workload_(&workload), config_(config) {
  assert(config.duration_ms > 0.0);
  assert(config.warmup_ms >= 0.0);
  assert(config.service_jitter >= 0.0 && config.service_jitter < 1.0);
}

SimResult SystemSimulator::Run(const std::vector<double>& shares) {
  const Workload& w = *workload_;
  assert(shares.size() == w.subtask_count());

  obs::ScopedTimer run_timing(
      config_.metrics != nullptr ? config_.metrics->GetTimer("sim.run")
                                 : nullptr);

  Rng service_rng(config_.seed ^ 0x5e41'ce00ull);

  // Build one scheduler per resource with one flow per hosted subtask.
  std::vector<std::unique_ptr<PsScheduler>> schedulers;
  std::vector<int> flow_of_subtask(w.subtask_count(), -1);
  schedulers.reserve(w.resource_count());
  for (const ResourceInfo& resource : w.resources()) {
    std::unique_ptr<PsScheduler> scheduler;
    if (config_.scheduler == SchedulerKind::kGpsFluid) {
      scheduler = std::make_unique<GpsScheduler>(1.0);
    } else {
      scheduler = std::make_unique<SfsScheduler>(1.0, config_.sfs_quantum_ms);
    }
    for (SubtaskId sid : resource.subtasks) {
      flow_of_subtask[sid.value()] =
          scheduler->AddFlow(shares[sid.value()]);
    }
    if (config_.model_background_load && resource.capacity < 1.0) {
      scheduler->AddFlow(1.0 - resource.capacity, /*always_backlogged=*/true);
    }
    schedulers.push_back(std::move(scheduler));
  }

  // Trigger sources and next pending release per task.
  std::vector<TriggerSource> triggers;
  std::vector<double> next_release(w.task_count());
  triggers.reserve(w.task_count());
  for (const TaskInfo& task : w.tasks()) {
    triggers.emplace_back(task.trigger,
                          config_.seed * 1315423911ull + task.id.value());
    next_release[task.id.value()] = triggers.back().NextReleaseMs();
  }

  // Job bookkeeping.  Job ids encode (job set, local subtask).
  std::unordered_map<std::uint64_t, JobSet> job_sets;
  std::uint64_t next_job_set_id = 1;
  std::unordered_map<std::uint64_t, double> eligible_at;  // by job id
  std::unordered_map<std::uint64_t, double> work_of;      // by job id
  const auto make_job_id = [](std::uint64_t set, int local) {
    return set * 4096 + static_cast<std::uint64_t>(local);
  };

  SimResult result;
  result.subtask_latencies.resize(w.subtask_count());
  result.task_latencies.resize(w.task_count());
  result.deadline_misses.assign(w.task_count(), 0);
  result.completed_per_task.assign(w.task_count(), 0);
  result.resource_utilization.assign(w.resource_count(), 0.0);

  const auto enqueue_job = [&](std::uint64_t set_id, int local, double now) {
    const JobSet& set = job_sets.at(set_id);
    const TaskInfo& task = w.task(set.task);
    const SubtaskId sid = task.subtasks[local];
    const SubtaskInfo& sub = w.subtask(sid);
    Job job;
    job.id = make_job_id(set_id, local);
    const double jitter =
        config_.service_jitter > 0.0
            ? service_rng.Uniform(1.0 - config_.service_jitter, 1.0)
            : 1.0;
    job.work_ms = sub.wcet_ms * jitter;
    job.enqueued_ms = now;
    eligible_at[job.id] = now;
    work_of[job.id] = job.work_ms;
    PsScheduler& scheduler = *schedulers[sub.resource.value()];
    scheduler.Enqueue(flow_of_subtask[sid.value()], job);
    result.max_queue_length =
        std::max(result.max_queue_length,
                 scheduler.QueueLength(flow_of_subtask[sid.value()]));
  };

  // Completion processing is deferred so all schedulers advance to the same
  // instant before successors are enqueued.
  std::vector<std::pair<std::uint64_t, double>> completions;

  const auto process_completion = [&](std::uint64_t job_id, double at_ms) {
    const std::uint64_t set_id = job_id / 4096;
    const int local = static_cast<int>(job_id % 4096);
    auto it = job_sets.find(set_id);
    if (it == job_sets.end()) return;
    JobSet& set = it->second;
    const TaskInfo& task = w.task(set.task);
    const SubtaskId sid = task.subtasks[local];

    if (at_ms >= config_.warmup_ms) {
      result.subtask_latencies[sid.value()].Add(at_ms -
                                                eligible_at.at(job_id));
      ++result.jobs_completed;
      // Served work accrues to the resource's utilization (approximation:
      // attributed at completion time).
      result.resource_utilization[w.subtask(sid).resource.value()] +=
          work_of.at(job_id);
    }
    eligible_at.erase(job_id);
    work_of.erase(job_id);

    // Release successors whose predecessors are all done.
    for (int succ : task.dag.successors(local)) {
      if (--set.pending_preds[succ] == 0) enqueue_job(set_id, succ, at_ms);
    }
    if (task.dag.successors(local).empty()) {
      if (--set.remaining_end_subtasks == 0) {
        if (at_ms >= config_.warmup_ms) {
          const double e2e = at_ms - set.released_ms;
          result.task_latencies[set.task.value()].Add(e2e);
          ++result.job_sets_completed;
          ++result.completed_per_task[set.task.value()];
          if (e2e > task.critical_time_ms) {
            ++result.deadline_misses[set.task.value()];
          }
        }
        job_sets.erase(it);
      }
    }
  };

  const auto release_task = [&](TaskId task_id, double now) {
    const TaskInfo& task = w.task(task_id);
    const std::uint64_t set_id = next_job_set_id++;
    JobSet set;
    set.task = task_id;
    set.released_ms = now;
    set.pending_preds.resize(task.subtasks.size());
    for (std::size_t local = 0; local < task.subtasks.size(); ++local) {
      set.pending_preds[local] =
          static_cast<int>(task.dag.predecessors(local).size());
    }
    set.remaining_end_subtasks = static_cast<int>(task.dag.leaves().size());
    job_sets.emplace(set_id, std::move(set));
    ++result.job_sets_released;
    enqueue_job(set_id, task.dag.root(), now);
  };

  // Main loop: advance all schedulers in lockstep to the next event.
  double now = 0.0;
  while (now < config_.duration_ms) {
    double t_next = config_.duration_ms;
    for (double release : next_release) t_next = std::min(t_next, release);
    for (const auto& scheduler : schedulers) {
      t_next = std::min(t_next, scheduler->NextCompletionMs());
    }
    t_next = std::max(t_next, now + 1e-9);
    t_next = std::min(t_next, config_.duration_ms);

    completions.clear();
    for (auto& scheduler : schedulers) {
      scheduler->AdvanceTo(t_next, [&](std::uint64_t job_id, double at_ms) {
        completions.push_back({job_id, at_ms});
      });
    }
    // Deterministic order: by job id (times are all ~t_next).
    std::sort(completions.begin(), completions.end());
    for (const auto& [job_id, at_ms] : completions) {
      process_completion(job_id, at_ms);
    }

    now = t_next;
    for (const TaskInfo& task : w.tasks()) {
      while (next_release[task.id.value()] <= now + 1e-9) {
        release_task(task.id, next_release[task.id.value()]);
        next_release[task.id.value()] =
            triggers[task.id.value()].NextReleaseMs();
      }
    }
  }

  // Normalize served work into a utilization fraction of the measured
  // interval.
  const double measured_ms =
      std::max(config_.duration_ms - config_.warmup_ms, 1e-9);
  for (double& utilization : result.resource_utilization) {
    utilization /= measured_ms;
  }

  if (config_.metrics != nullptr) {
    config_.metrics->GetCounter("sim.job_sets_released")
        ->Increment(result.job_sets_released);
    config_.metrics->GetCounter("sim.jobs_completed")
        ->Increment(result.jobs_completed);
    config_.metrics->GetCounter("sim.job_sets_completed")
        ->Increment(result.job_sets_completed);
    std::uint64_t misses = 0;
    for (std::uint64_t task_misses : result.deadline_misses) {
      misses += task_misses;
    }
    config_.metrics->GetCounter("sim.deadline_misses")->Increment(misses);
  }
  return result;
}

}  // namespace lla::sim
