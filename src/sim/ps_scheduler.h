// Proportional-share resource schedulers for the discrete-event substrate.
//
// The paper's prototype runs on a kernel with Surplus Fair Scheduling [6];
// we provide two simulations of proportional share:
//
//   * GpsScheduler — fluid Generalized Processor Sharing: at any instant,
//     each backlogged flow receives capacity proportional to its weight
//     (work-conserving).  This is the idealization every PS scheduler
//     approximates; completions are exact to floating point.
//
//   * SfsScheduler — a quantum-based weighted scheduler with surplus
//     tracking: time advances in fixed quanta; each quantum is given to the
//     backlogged flow whose normalized service lags furthest behind its
//     weighted entitlement (the surplus-fair criterion).  This exhibits the
//     discretization lag real schedulers add — the paper's l_r.
//
// Flows correspond to subtasks; a flow can be marked always-backlogged to
// model background reservations such as the prototype's 0.1-share garbage
// collector.
#pragma once

#include <cstdint>
#include <functional>
#include <limits>
#include <queue>
#include <vector>

namespace lla::sim {

/// A unit of work queued on a flow.  `id` is opaque to the scheduler.
struct Job {
  std::uint64_t id = 0;
  double work_ms = 0.0;      ///< service demand at full capacity
  double enqueued_ms = 0.0;  ///< when the job became eligible
};

/// Completion notification: job id + completion time.
using CompletionCallback =
    std::function<void(std::uint64_t job_id, double completed_ms)>;

class PsScheduler {
 public:
  virtual ~PsScheduler() = default;

  /// Registers a flow; returns its index.  `always_backlogged` flows consume
  /// their share forever and never complete jobs (background reservations).
  virtual int AddFlow(double weight, bool always_backlogged = false) = 0;

  /// Re-weights a flow (enacting a new share allocation).
  virtual void SetWeight(int flow, double weight) = 0;

  /// Queues a job on a flow at the current time.
  virtual void Enqueue(int flow, Job job) = 0;

  /// The next instant at which a job completes, or +infinity when no
  /// real flow is backlogged.
  virtual double NextCompletionMs() const = 0;

  /// Advances the clock to `t_ms` (>= now), delivering completions in order.
  virtual void AdvanceTo(double t_ms, const CompletionCallback& on_done) = 0;

  virtual double now_ms() const = 0;
  virtual std::size_t QueueLength(int flow) const = 0;
};

/// Fluid GPS (exact).
class GpsScheduler final : public PsScheduler {
 public:
  /// `capacity_rate` = work-ms served per elapsed ms at full allocation
  /// (1.0 models a dedicated CPU or link).
  explicit GpsScheduler(double capacity_rate = 1.0);

  int AddFlow(double weight, bool always_backlogged = false) override;
  void SetWeight(int flow, double weight) override;
  void Enqueue(int flow, Job job) override;
  double NextCompletionMs() const override;
  void AdvanceTo(double t_ms, const CompletionCallback& on_done) override;
  double now_ms() const override { return now_ms_; }
  std::size_t QueueLength(int flow) const override {
    return flows_[flow].queue.size();
  }

 private:
  struct Flow {
    double weight = 0.0;
    bool always_backlogged = false;
    std::queue<Job> queue;
    double head_remaining_ms = 0.0;
  };

  double ActiveWeight() const;
  double FlowRate(const Flow& flow, double active_weight) const;
  /// Serves all flows for `dt` at current rates; returns completions.
  void Serve(double dt, std::vector<std::pair<int, Job>>* completed);

  double capacity_rate_;
  double now_ms_ = 0.0;
  std::vector<Flow> flows_;
};

/// Quantum-based surplus-fair scheduler (approximate; adds lag).
class SfsScheduler final : public PsScheduler {
 public:
  SfsScheduler(double capacity_rate = 1.0, double quantum_ms = 1.0);

  int AddFlow(double weight, bool always_backlogged = false) override;
  void SetWeight(int flow, double weight) override;
  void Enqueue(int flow, Job job) override;
  double NextCompletionMs() const override;
  void AdvanceTo(double t_ms, const CompletionCallback& on_done) override;
  double now_ms() const override { return now_ms_; }
  std::size_t QueueLength(int flow) const override {
    return flows_[flow].queue.size();
  }

 private:
  struct Flow {
    double weight = 0.0;
    bool always_backlogged = false;
    std::queue<Job> queue;
    double head_remaining_ms = 0.0;
    double service_ms = 0.0;  ///< total service received
  };

  bool AnyBacklogged() const;
  int PickNext() const;

  double capacity_rate_;
  double quantum_ms_;
  double now_ms_ = 0.0;
  double virtual_service_ms_ = 0.0;  ///< total weighted entitlement clock
  std::vector<Flow> flows_;
};

}  // namespace lla::sim
