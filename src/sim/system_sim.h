// SystemSimulator: discrete-event execution of a workload under a given
// share allocation.
//
// This is the substitute for the paper's RTSJ/IBM-RTLinux testbed (Sec. 6):
// triggering events release job sets; jobs traverse the task DAG, each
// queuing on its subtask's flow at the resource's proportional-share
// scheduler; per-subtask and end-to-end latencies are sampled.  Crucially it
// reproduces the effect the paper's error correction exists for — job
// releases of different subtasks are *not* synchronized and schedulers are
// work-conserving, so measured latencies undershoot the conservative
// (wcet + lag)/share model.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "common/stats.h"
#include "model/workload.h"
#include "obs/metrics.h"
#include "sim/ps_scheduler.h"
#include "sim/trigger_source.h"

namespace lla::sim {

enum class SchedulerKind { kGpsFluid, kSurplusFair };

struct SimConfig {
  double duration_ms = 30000.0;
  std::uint64_t seed = 1;
  SchedulerKind scheduler = SchedulerKind::kGpsFluid;
  double sfs_quantum_ms = 1.0;
  /// Per-job service demand = wcet * Uniform(1 - jitter, 1).  Zero models
  /// every job hitting its WCET; real systems mostly run below it.
  double service_jitter = 0.25;
  /// Adds a flow of weight (1 - capacity) that is permanently backlogged
  /// (the prototype's garbage-collector reservation).
  bool model_background_load = true;
  /// Warm-up interval excluded from the statistics.
  double warmup_ms = 1000.0;
  /// Registry for the DES counters (sim.job_sets_released,
  /// sim.jobs_completed, sim.job_sets_completed, sim.deadline_misses) and
  /// the sim.run wall-clock timer; accumulated across Run() calls.  Null
  /// disables them (non-owning; must outlive the simulator).
  obs::MetricRegistry* metrics = nullptr;
};

struct SimResult {
  /// Per-subtask latency samples (eligible -> complete), by SubtaskId.
  std::vector<SampleQuantile> subtask_latencies;
  /// Per-task end-to-end job-set latencies (release -> last end subtask),
  /// by TaskId.
  std::vector<SampleQuantile> task_latencies;
  std::uint64_t jobs_completed = 0;
  std::uint64_t job_sets_completed = 0;
  std::uint64_t job_sets_released = 0;
  /// Largest backlog observed on any flow (unbounded growth means the
  /// shares are below the sustainable minimum).
  std::size_t max_queue_length = 0;
  /// Job sets whose end-to-end latency exceeded the task's critical time
  /// (post warm-up), by TaskId — the classic deadline-miss count.
  std::vector<std::uint64_t> deadline_misses;
  /// Same, as a fraction of completed job sets (0 when none completed).
  double MissRatio(TaskId task) const {
    const std::uint64_t completed = completed_per_task[task.value()];
    return completed == 0 ? 0.0
                          : static_cast<double>(
                                deadline_misses[task.value()]) /
                                static_cast<double>(completed);
  }
  std::vector<std::uint64_t> completed_per_task;  ///< by TaskId, post warm-up
  /// Fraction of (post warm-up) time each resource spent serving real
  /// (non-background) flows, by ResourceId.
  std::vector<double> resource_utilization;
};

class SystemSimulator {
 public:
  SystemSimulator(const Workload& workload, SimConfig config = {});

  /// Runs the simulation with `shares[s]` as the enacted share of global
  /// subtask s.  Can be called repeatedly; each run is independent and
  /// deterministic in (workload, config, shares).
  SimResult Run(const std::vector<double>& shares);

 private:
  const Workload* workload_;
  SimConfig config_;
};

}  // namespace lla::sim
