#include "sim/trigger_source.h"

namespace lla::sim {

TriggerSource::TriggerSource(const TriggerSpec& spec, std::uint64_t seed)
    : spec_(spec), rng_(seed) {}

double TriggerSource::NextReleaseMs() {
  switch (spec_.kind) {
    case TriggerSpec::Kind::kPeriodic: {
      if (!started_) {
        started_ = true;
        next_ms_ = spec_.phase_ms;
      } else {
        next_ms_ += spec_.period_ms;
      }
      return next_ms_;
    }
    case TriggerSpec::Kind::kPoisson: {
      const double mean_gap_ms = 1000.0 / spec_.rate_per_s;
      next_ms_ += rng_.Exponential(mean_gap_ms);
      return next_ms_;
    }
    case TriggerSpec::Kind::kBursty: {
      if (!started_) {
        started_ = true;
        burst_start_ms_ = 0.0;
        burst_index_ = 0;
      }
      if (burst_index_ >= spec_.burst_size) {
        burst_start_ms_ += spec_.period_ms;
        burst_index_ = 0;
      }
      const double at = burst_start_ms_ + burst_index_ * spec_.burst_spread_ms;
      ++burst_index_;
      return at;
    }
  }
  return next_ms_;
}

}  // namespace lla::sim
