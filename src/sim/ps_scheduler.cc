#include "sim/ps_scheduler.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace lla::sim {
namespace {
constexpr double kInf = std::numeric_limits<double>::infinity();
constexpr double kEps = 1e-9;
}  // namespace

// ---------------------------------------------------------------- GPS -----

GpsScheduler::GpsScheduler(double capacity_rate)
    : capacity_rate_(capacity_rate) {
  assert(capacity_rate > 0.0);
}

int GpsScheduler::AddFlow(double weight, bool always_backlogged) {
  assert(weight >= 0.0);
  Flow flow;
  flow.weight = weight;
  flow.always_backlogged = always_backlogged;
  flows_.push_back(std::move(flow));
  return static_cast<int>(flows_.size()) - 1;
}

void GpsScheduler::SetWeight(int flow, double weight) {
  assert(weight >= 0.0);
  flows_[flow].weight = weight;
}

void GpsScheduler::Enqueue(int flow, Job job) {
  assert(job.work_ms > 0.0);
  Flow& f = flows_[flow];
  assert(!f.always_backlogged);
  if (f.queue.empty()) f.head_remaining_ms = job.work_ms;
  f.queue.push(job);
}

double GpsScheduler::ActiveWeight() const {
  double total = 0.0;
  for (const Flow& flow : flows_) {
    if (flow.always_backlogged || !flow.queue.empty()) total += flow.weight;
  }
  return total;
}

double GpsScheduler::FlowRate(const Flow& flow, double active_weight) const {
  if (active_weight <= 0.0 || flow.weight <= 0.0) return 0.0;
  return capacity_rate_ * flow.weight / active_weight;
}

double GpsScheduler::NextCompletionMs() const {
  const double active_weight = ActiveWeight();
  double next = kInf;
  for (const Flow& flow : flows_) {
    if (flow.always_backlogged || flow.queue.empty()) continue;
    const double rate = FlowRate(flow, active_weight);
    if (rate <= 0.0) continue;
    next = std::min(next, now_ms_ + flow.head_remaining_ms / rate);
  }
  return next;
}

void GpsScheduler::Serve(double dt,
                         std::vector<std::pair<int, Job>>* completed) {
  const double active_weight = ActiveWeight();
  for (std::size_t i = 0; i < flows_.size(); ++i) {
    Flow& flow = flows_[i];
    if (flow.always_backlogged || flow.queue.empty()) continue;
    flow.head_remaining_ms -= FlowRate(flow, active_weight) * dt;
    if (flow.head_remaining_ms <= kEps) {
      completed->push_back({static_cast<int>(i), flow.queue.front()});
      flow.queue.pop();
      flow.head_remaining_ms =
          flow.queue.empty() ? 0.0 : flow.queue.front().work_ms;
    }
  }
}

void GpsScheduler::AdvanceTo(double t_ms, const CompletionCallback& on_done) {
  assert(t_ms >= now_ms_ - kEps);
  std::vector<std::pair<int, Job>> completed;
  while (now_ms_ < t_ms - kEps) {
    const double next = NextCompletionMs();
    const double step_end = std::min(next, t_ms);
    const double dt = step_end - now_ms_;
    completed.clear();
    if (dt > 0.0) Serve(dt, &completed);
    now_ms_ = step_end;
    for (const auto& [flow, job] : completed) {
      (void)flow;
      if (on_done) on_done(job.id, now_ms_);
    }
    if (next > t_ms) break;  // served straight to the horizon
  }
  now_ms_ = std::max(now_ms_, t_ms);
}

// ---------------------------------------------------------------- SFS -----

SfsScheduler::SfsScheduler(double capacity_rate, double quantum_ms)
    : capacity_rate_(capacity_rate), quantum_ms_(quantum_ms) {
  assert(capacity_rate > 0.0);
  assert(quantum_ms > 0.0);
}

int SfsScheduler::AddFlow(double weight, bool always_backlogged) {
  assert(weight >= 0.0);
  Flow flow;
  flow.weight = weight;
  flow.always_backlogged = always_backlogged;
  flows_.push_back(std::move(flow));
  return static_cast<int>(flows_.size()) - 1;
}

void SfsScheduler::SetWeight(int flow, double weight) {
  assert(weight >= 0.0);
  flows_[flow].weight = weight;
}

void SfsScheduler::Enqueue(int flow, Job job) {
  assert(job.work_ms > 0.0);
  Flow& f = flows_[flow];
  assert(!f.always_backlogged);
  if (f.queue.empty()) {
    f.head_remaining_ms = job.work_ms;
    // A newly backlogged flow joins at the current normalized-service level
    // so it cannot claim service "owed" for its idle period.
    if (f.weight > 0.0) {
      f.service_ms = std::max(f.service_ms, virtual_service_ms_ * f.weight);
    }
  }
  f.queue.push(job);
}

bool SfsScheduler::AnyBacklogged() const {
  for (const Flow& flow : flows_) {
    if ((flow.always_backlogged || !flow.queue.empty()) && flow.weight > 0.0) {
      return true;
    }
  }
  return false;
}

int SfsScheduler::PickNext() const {
  // Surplus-fair criterion: serve the backlogged flow with the smallest
  // normalized service (largest deficit relative to entitlement).
  int best = -1;
  double best_norm = kInf;
  for (std::size_t i = 0; i < flows_.size(); ++i) {
    const Flow& flow = flows_[i];
    if (flow.weight <= 0.0) continue;
    if (!flow.always_backlogged && flow.queue.empty()) continue;
    const double norm = flow.service_ms / flow.weight;
    if (norm < best_norm) {
      best_norm = norm;
      best = static_cast<int>(i);
    }
  }
  return best;
}

double SfsScheduler::NextCompletionMs() const {
  if (!AnyBacklogged()) return kInf;
  const int next = PickNext();
  if (next < 0) return kInf;
  const Flow& flow = flows_[next];
  double segment = quantum_ms_;
  if (!flow.always_backlogged) {
    segment = std::min(segment, flow.head_remaining_ms / capacity_rate_);
  }
  // No completion can occur before the end of the upcoming segment.
  return now_ms_ + std::max(segment, kEps);
}

void SfsScheduler::AdvanceTo(double t_ms, const CompletionCallback& on_done) {
  assert(t_ms >= now_ms_ - kEps);
  while (now_ms_ < t_ms - kEps) {
    if (!AnyBacklogged()) {
      now_ms_ = t_ms;
      break;
    }
    const int current = PickNext();
    Flow& flow = flows_[current];
    double segment = quantum_ms_;
    if (!flow.always_backlogged) {
      segment = std::min(segment, flow.head_remaining_ms / capacity_rate_);
    }
    const double dt = std::min(segment, t_ms - now_ms_);
    const double served = dt * capacity_rate_;
    flow.service_ms += served;
    virtual_service_ms_ = std::max(
        virtual_service_ms_,
        flow.weight > 0.0 ? flow.service_ms / flow.weight : 0.0);
    now_ms_ += dt;
    if (!flow.always_backlogged) {
      flow.head_remaining_ms -= served;
      if (flow.head_remaining_ms <= kEps) {
        const Job job = flow.queue.front();
        flow.queue.pop();
        flow.head_remaining_ms =
            flow.queue.empty() ? 0.0 : flow.queue.front().work_ms;
        if (on_done) on_done(job.id, now_ms_);
      }
    }
  }
  now_ms_ = std::max(now_ms_, t_ms);
}

}  // namespace lla::sim
