// Generates task release times from a TriggerSpec (paper Sec. 2).
//
// Periodic: phase, phase + T, phase + 2T, ...
// Poisson:  exponential inter-arrival gaps with the configured mean rate.
// Bursty:   every period, `burst_size` releases spaced `burst_spread_ms`.
#pragma once

#include <cstdint>

#include "common/rng.h"
#include "model/trigger.h"

namespace lla::sim {

class TriggerSource {
 public:
  TriggerSource(const TriggerSpec& spec, std::uint64_t seed);

  /// Absolute time (ms) of the next release; each call advances the source.
  double NextReleaseMs();

 private:
  TriggerSpec spec_;
  Rng rng_;
  double next_ms_ = 0.0;
  int burst_index_ = 0;
  double burst_start_ms_ = 0.0;
  bool started_ = false;
};

}  // namespace lla::sim
