#!/usr/bin/env python3
"""Merge multi-core BENCH_*.json rows from CI matrix artifacts into the repo.

The committed BENCH_*.json files are regenerated on whatever host runs the
benches — often a 1-core container, where every thread width clamps to one
effective thread and the parallel speedup columns are meaningless
(BENCH_throughput.json / BENCH_scale.json carry `"clamped": true` /
`"hardware_concurrency": 1` in that case).  Real >= 4-thread rows come from
the CI bench matrix (ubuntu-latest x86 + ubuntu-24.04-arm, see
.github/workflows/ci.yml), which uploads each runner's JSON as the
`BENCH_results-<runner>` artifact.

This script imports those artifacts honestly instead of hand-editing JSON:

    gh run download <run-id>            # or the web UI; one dir per artifact
    python3 tools/merge_ci_bench.py BENCH_results-ubuntu-latest \
                                    BENCH_results-ubuntu-24.04-arm
    git diff BENCH_*.json               # review, then commit

For every BENCH_*.json found in the artifact directories it:
  * refuses rows generated from a different commit than HEAD (the committed
    numbers must describe the committed code; override with --commit only
    when you know the bench-relevant code is unchanged),
  * refuses artifacts that are themselves clamped (a 1-core CI runner would
    just reproduce the limitation this script exists to fix),
  * replaces the committed file with the artifact wholesale and records the
    provenance under "ci_source" (runner label from the artifact directory
    name, plus the artifact's own commit/generated_at) — rows from a real
    multi-core host supersede clamped local rows, and keeping the file
    single-source avoids mixed-host row sets that compare nothing.

When both runners are given, the x86 runner wins for the committed copy and
the other runner's file is written next to it as BENCH_<name>.<runner>.json
so the arm numbers stay reviewable without a second merge policy.

Stdlib only; no third-party imports.
"""

import argparse
import json
import pathlib
import subprocess
import sys

# Benches whose committed copy should carry real multi-core rows.  The
# others (recovery, churn, convergence) measure counts and gates that do not
# depend on hardware concurrency, so local regeneration stays authoritative.
MULTICORE_BENCHES = ("BENCH_throughput.json", "BENCH_scale.json")


def head_commit(repo: pathlib.Path) -> str:
    return subprocess.run(
        ["git", "-C", str(repo), "rev-parse", "HEAD"],
        check=True, capture_output=True, text=True,
    ).stdout.strip()


def is_clamped(report: dict) -> bool:
    """True when the artifact itself came from an effectively 1-core host."""
    if report.get("hardware_concurrency", 0) and \
            report["hardware_concurrency"] <= 1:
        return True
    return bool(report.get("clamped", False))


def merge_one(artifact: pathlib.Path, runner: str, repo: pathlib.Path,
              expect_commit: str, force: bool) -> bool:
    name = artifact.name
    with open(artifact) as f:
        report = json.load(f)

    commit = report.get("commit", "")
    if commit != expect_commit and not force:
        print(f"  SKIP {name} ({runner}): artifact commit {commit[:12]} != "
              f"expected {expect_commit[:12]} (use --commit/--force only if "
              "bench-relevant code is unchanged)")
        return False
    if is_clamped(report):
        print(f"  SKIP {name} ({runner}): artifact is clamped "
              "(1-core CI host?) — nothing gained over local rows")
        return False

    report["ci_source"] = {
        "runner": runner,
        "commit": commit,
        "generated_at": report.get("generated_at", ""),
    }
    out = repo / name
    with open(out, "w") as f:
        json.dump(report, f, indent=1)
        f.write("\n")
    print(f"  merged {name} from {runner} "
          f"(hardware_concurrency={report.get('hardware_concurrency', '?')})")
    return True


def main() -> int:
    parser = argparse.ArgumentParser(
        description="Merge CI bench-matrix artifacts into committed "
                    "BENCH_*.json files")
    parser.add_argument("artifact_dirs", nargs="+", type=pathlib.Path,
                        help="downloaded BENCH_results-<runner> directories")
    parser.add_argument("--commit", default=None,
                        help="expected source commit (default: git HEAD)")
    parser.add_argument("--force", action="store_true",
                        help="accept artifacts from a different commit")
    args = parser.parse_args()

    repo = pathlib.Path(__file__).resolve().parent.parent
    expect = args.commit or head_commit(repo)

    # Primary (committed) runner first: x86 if present, else the first dir.
    dirs = sorted(args.artifact_dirs,
                  key=lambda d: 0 if "arm" not in d.name else 1)
    merged_any = False
    primary_done = set()
    for i, directory in enumerate(dirs):
        if not directory.is_dir():
            print(f"error: {directory} is not a directory", file=sys.stderr)
            return 2
        runner = directory.name.removeprefix("BENCH_results-")
        print(f"{directory} (runner: {runner}):")
        for name in MULTICORE_BENCHES:
            artifact = directory / name
            if not artifact.is_file():
                print(f"  missing {name}")
                continue
            if name in primary_done:
                # Secondary runner: keep its rows reviewable alongside the
                # committed copy without overwriting it.
                side = repo / name.replace(
                    ".json", f".{runner.replace('.', '-')}.json")
                with open(artifact) as f:
                    report = json.load(f)
                if is_clamped(report):
                    print(f"  SKIP {name} ({runner}): clamped")
                    continue
                report["ci_source"] = {"runner": runner,
                                       "commit": report.get("commit", ""),
                                       "generated_at":
                                           report.get("generated_at", "")}
                with open(side, "w") as f:
                    json.dump(report, f, indent=1)
                    f.write("\n")
                print(f"  wrote secondary copy {side.name}")
                merged_any = True
            elif merge_one(artifact, runner, repo, expect, args.force):
                primary_done.add(name)
                merged_any = True
    if not merged_any:
        print("nothing merged")
        return 1
    print("review with `git diff BENCH_*.json`, then commit")
    return 0


if __name__ == "__main__":
    sys.exit(main())
