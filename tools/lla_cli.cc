// lla — command-line front end for the library.
//
//   lla solve <workload-file> [--variant sum|path-weighted] [--iters N]
//       Optimize and print the latency assignment, shares and prices.
//       --restore=path resumes the dual iteration from a state snapshot
//       previously written by `lla checkpoint` (bit-identical resume); the
//       snapshot format (text v1/v2 or binary b1) is auto-detected from the
//       file's magic bytes; binary files restore through the zero-copy
//       mmap path (DESIGN.md §7.11).
//       --round-threads=N runs the distributed synchronous deployment
//       instead of the single-process engine: sharded resource agents plus
//       parallel coordinator rounds on an N-thread pool (bit-identical to
//       N=1 at any thread count, DESIGN.md §7.11).
//   lla checkpoint <workload-file> <snapshot-file> [--iters N]
//                  [--format=text|binary]
//       Run N iterations, then save the engine's dual state (prices, step
//       multipliers, active-set shadow state) as a durable snapshot — text
//       by default (diff-able, DESIGN.md §7.7), binary b1 on request
//       (compact, DESIGN.md §7.10).
//   lla check <workload-file> [--iters N]
//       Schedulability verdict (LLA run + Phase-I cross-check).
//   lla simulate <workload-file> <seconds> [--sfs]
//       Optimize, enact, execute on the DES substrate, report percentiles.
//   lla describe <workload-file>
//       Validate and summarize the workload.
//   lla generate <output-file> [--seed N] [--tasks N] [--resources N]
//       Generate a random schedulable workload file.
//   lla trace <workload-file> [--iters N] [--out path]
//       Optimize while streaming per-iteration JSONL (default: stdout);
//       engine phase timings and counters go to stderr.
//   lla churn <workload-file> [--mutations=N] [--seed=S] [--threads=N]
//       Apply a deterministic join/leave/WCET mutation storm against the
//       live engine (admission-gated joins, structural warm starts) and
//       report sustained mutations/sec and re-convergence percentiles.
//
// Exit codes: 0 success; 1 runtime error (generation/save failure);
// 2 usage; 3 workload load/parse error; 4 solve not converged / infeasible
// (or workload unschedulable for `check`).
//
// Example files live in examples/data/.
#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "common/stats.h"
#include "core/engine.h"
#include "runtime/churn.h"
#include "runtime/coordinator.h"
#include "workloads/transform.h"
#include "core/schedulability.h"
#include "model/evaluation.h"
#include "model/serialization.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "workloads/random.h"
#include "sim/system_sim.h"
#include "solver/phase1.h"

using namespace lla;

namespace {

// Distinct exit codes so scripts can tell a malformed workload (3) from an
// optimizer that ran but did not reach a feasible converged allocation (4).
constexpr int kExitSuccess = 0;
constexpr int kExitRuntimeError = 1;
constexpr int kExitUsage = 2;
constexpr int kExitLoadError = 3;
constexpr int kExitNotConverged = 4;

int Usage() {
  std::fprintf(stderr,
               "usage:\n"
               "  lla solve <file> [--variant sum|path-weighted] [--iters N] "
               "[--threads=N] [--epsilon-quiescence=X]\n"
               "            [--dynamics=plain|heavy-ball|nesterov] "
               "[--momentum=B] [--restore=snapshot] [--round-threads=N]\n"
               "            (--dynamics/--momentum apply to both the engine "
               "and the --round-threads distributed path)\n"
               "  lla checkpoint <file> <snapshot> [--variant "
               "sum|path-weighted] [--iters N] [--threads=N] "
               "[--epsilon-quiescence=X] [--format=text|binary]\n"
               "            [--dynamics=plain|heavy-ball|nesterov] "
               "[--momentum=B]\n"
               "  lla check <file> [--iters N]\n"
               "  lla simulate <file> <seconds> [--sfs]\n"
               "  lla describe <file>\n"
               "  lla generate <file> [--seed N] [--tasks N] "
               "[--resources N]\n"
               "  lla trace <file> [--variant sum|path-weighted] [--iters N] "
               "[--out path] [--threads=N]\n"
               "            [--dynamics=plain|heavy-ball|nesterov] "
               "[--momentum=B]\n"
               "  lla churn <file> [--mutations=N] [--seed=S] "
               "[--threads=N]\n"
               "exit codes: 0 ok, 1 runtime error, 2 usage, 3 load error, "
               "4 not converged/infeasible\n");
  return kExitUsage;
}

// Strict parse for --threads values: the whole token must be a positive
// decimal integer.  "4x", "", "-2" and "0" are usage errors — a silently
// atoi'd 0 would run the engine with no pool while looking accepted.
bool ParseThreadCount(const char* text, int* out) {
  char* end = nullptr;
  errno = 0;
  const long value = std::strtol(text, &end, 10);
  if (end == text || *end != '\0' || errno == ERANGE) return false;
  if (value < 1 || value > 4096) return false;
  *out = static_cast<int>(value);
  return true;
}

// Accepts "--threads N" and "--threads=N"; advances *i past a consumed
// separate value.  Returns false (usage error) on a malformed value or a
// missing one.
bool MatchThreadsFlag(int argc, char** argv, int* i, int* threads,
                      bool* matched) {
  *matched = false;
  const char* arg = argv[*i];
  if (std::strncmp(arg, "--threads=", 10) == 0) {
    *matched = true;
    return ParseThreadCount(arg + 10, threads);
  }
  if (std::strcmp(arg, "--threads") == 0) {
    *matched = true;
    if (*i + 1 >= argc) return false;
    return ParseThreadCount(argv[++*i], threads);
  }
  return true;  // not a --threads flag at all
}

// Accepts "--round-threads N" and "--round-threads=N" (same strict value
// rules as --threads); advances *i past a consumed separate value.
bool MatchRoundThreadsFlag(int argc, char** argv, int* i, int* threads,
                           bool* matched) {
  *matched = false;
  const char* arg = argv[*i];
  if (std::strncmp(arg, "--round-threads=", 16) == 0) {
    *matched = true;
    return ParseThreadCount(arg + 16, threads);
  }
  if (std::strcmp(arg, "--round-threads") == 0) {
    *matched = true;
    if (*i + 1 >= argc) return false;
    return ParseThreadCount(argv[++*i], threads);
  }
  return true;  // not a --round-threads flag at all
}

// Strict parse for --epsilon-quiescence: the whole token must be a finite
// decimal in [0, 1) — the range ActiveSetConfig accepts.  Anything else
// (including a bare "--epsilon-quiescence" with no value) is a usage error;
// a silently clamped value would run an approximation the user did not ask
// for.
bool ParseEpsilonQuiescence(const char* text, double* out) {
  char* end = nullptr;
  errno = 0;
  const double value = std::strtod(text, &end);
  if (end == text || *end != '\0' || errno == ERANGE) return false;
  if (!(value >= 0.0) || value >= 1.0) return false;
  *out = value;
  return true;
}

// Accepts "--epsilon-quiescence X" and "--epsilon-quiescence=X"; advances
// *i past a consumed separate value.  Returns false (usage error) on a
// malformed or missing value.
bool MatchEpsilonFlag(int argc, char** argv, int* i, double* epsilon,
                      bool* matched) {
  *matched = false;
  const char* arg = argv[*i];
  constexpr const char* kFlag = "--epsilon-quiescence";
  const std::size_t len = std::strlen(kFlag);
  if (std::strncmp(arg, kFlag, len) == 0 && arg[len] == '=') {
    *matched = true;
    return ParseEpsilonQuiescence(arg + len + 1, epsilon);
  }
  if (std::strcmp(arg, kFlag) == 0) {
    *matched = true;
    if (*i + 1 >= argc) return false;
    return ParseEpsilonQuiescence(argv[++*i], epsilon);
  }
  return true;  // not an --epsilon-quiescence flag at all
}

// Strict parse for --dynamics: exactly one of the policy names.  Anything
// else is a usage error.
bool ParseDynamicsKind(const char* text, DynamicsKind* out) {
  if (std::strcmp(text, "plain") == 0) {
    *out = DynamicsKind::kPlain;
    return true;
  }
  if (std::strcmp(text, "heavy-ball") == 0) {
    *out = DynamicsKind::kHeavyBall;
    return true;
  }
  if (std::strcmp(text, "nesterov") == 0) {
    *out = DynamicsKind::kNesterov;
    return true;
  }
  return false;
}

// Accepts "--dynamics X" and "--dynamics=X"; advances *i past a consumed
// separate value.  Returns false (usage error) on a malformed or missing
// value.
bool MatchDynamicsFlag(int argc, char** argv, int* i, DynamicsKind* kind,
                       bool* matched) {
  *matched = false;
  const char* arg = argv[*i];
  if (std::strncmp(arg, "--dynamics=", 11) == 0) {
    *matched = true;
    return ParseDynamicsKind(arg + 11, kind);
  }
  if (std::strcmp(arg, "--dynamics") == 0) {
    *matched = true;
    if (*i + 1 >= argc) return false;
    return ParseDynamicsKind(argv[++*i], kind);
  }
  return true;  // not a --dynamics flag at all
}

// Strict parse for --momentum: a finite decimal in [0, 1), the range
// DynamicsConfig accepts (beta = 1 would make the velocity recursion
// marginally stable).
bool ParseMomentum(const char* text, double* out) {
  char* end = nullptr;
  errno = 0;
  const double value = std::strtod(text, &end);
  if (end == text || *end != '\0' || errno == ERANGE) return false;
  if (!(value >= 0.0) || value >= 1.0) return false;
  *out = value;
  return true;
}

// Accepts "--momentum X" and "--momentum=X"; advances *i past a consumed
// separate value.  Returns false (usage error) on a malformed or missing
// value.
bool MatchMomentumFlag(int argc, char** argv, int* i, double* momentum,
                       bool* matched) {
  *matched = false;
  const char* arg = argv[*i];
  if (std::strncmp(arg, "--momentum=", 11) == 0) {
    *matched = true;
    return ParseMomentum(arg + 11, momentum);
  }
  if (std::strcmp(arg, "--momentum") == 0) {
    *matched = true;
    if (*i + 1 >= argc) return false;
    return ParseMomentum(argv[++*i], momentum);
  }
  return true;  // not a --momentum flag at all
}

Expected<Workload> Load(const char* path) {
  auto workload = LoadWorkloadFromFile(path);
  if (!workload.ok()) {
    std::fprintf(stderr, "error loading %s: %s\n", path,
                 workload.error().c_str());
  }
  return workload;
}

int Describe(const Workload& w) {
  std::printf("resources: %zu   tasks: %zu   subtasks: %zu   paths: %zu\n\n",
              w.resource_count(), w.task_count(), w.subtask_count(),
              w.path_count());
  for (const ResourceInfo& r : w.resources()) {
    std::printf("resource %-16s %-4s capacity %.2f lag %.2f ms, %zu "
                "subtasks (min-share demand %.3f)\n",
                r.name.c_str(), ToString(r.kind), r.capacity, r.lag_ms,
                r.subtasks.size(), w.MinShareDemand(r.id));
  }
  std::printf("\n");
  for (const TaskInfo& t : w.tasks()) {
    std::printf("task %-20s C=%.1f ms  %zu subtasks, %zu paths, utility %s, "
                "%.1f releases/s\n",
                t.name.c_str(), t.critical_time_ms, t.subtasks.size(),
                t.paths.size(), t.utility->Describe().c_str(),
                t.trigger.MeanRatePerSecond());
  }
  return 0;
}

int Solve(const Workload& w, UtilityVariant variant, int iters,
          int threads, double epsilon_quiescence,
          const DynamicsConfig& dynamics, const std::string& restore_path) {
  LatencyModel model(w);
  LlaConfig config;
  config.solver.variant = variant;
  config.gamma0 = 3.0;
  config.num_threads = threads;
  config.active_set.epsilon_quiescence = epsilon_quiescence;
  config.dynamics = dynamics;
  LlaEngine engine(w, model, config);
  if (!restore_path.empty()) {
    // Binary b1 snapshots restore through the zero-copy path: mmap the
    // file, parse a non-owning view, decode each section once straight
    // into the engine (DESIGN.md §7.11).  Text snapshots take the classic
    // owning loader off the same mapped bytes.
    auto mapped = MappedSnapshotFile::Open(restore_path);
    if (!mapped.ok()) {
      std::fprintf(stderr, "error loading snapshot %s: %s\n",
                   restore_path.c_str(), mapped.error().c_str());
      return kExitLoadError;
    }
    const MappedSnapshotFile& file = mapped.value();
    long long resume_iteration = 0;
    if (SnapshotBytesAreBinary(file.data(), file.size())) {
      auto view = ParseSnapshotBinary(file.data(), file.size());
      if (!view.ok()) {
        std::fprintf(stderr, "error loading snapshot %s: %s\n",
                     restore_path.c_str(), view.error().c_str());
        return kExitLoadError;
      }
      const Status restored = engine.Restore(view.value());
      if (!restored.ok()) {
        std::fprintf(stderr, "error restoring snapshot %s: %s\n",
                     restore_path.c_str(), restored.error().c_str());
        return kExitLoadError;
      }
      resume_iteration = view.value().iteration;
    } else {
      auto snapshot =
          LoadSnapshotFromString(std::string(file.data(), file.size()));
      if (!snapshot.ok()) {
        std::fprintf(stderr, "error loading snapshot %s: %s\n",
                     restore_path.c_str(), snapshot.error().c_str());
        return kExitLoadError;
      }
      const Status restored = engine.Restore(snapshot.value());
      if (!restored.ok()) {
        std::fprintf(stderr, "error restoring snapshot %s: %s\n",
                     restore_path.c_str(), restored.error().c_str());
        return kExitLoadError;
      }
      resume_iteration = snapshot.value().iteration;
    }
    std::printf("restored dual state from %s (resuming at iteration %lld)\n",
                restore_path.c_str(), resume_iteration);
  }
  const RunResult run = engine.Run(iters);
  std::printf("%s after %d iterations; utility %.3f (%s variant); "
              "feasible: %s\n",
              run.converged ? "converged" : "NOT converged", run.iterations,
              run.final_utility, ToString(variant),
              run.final_feasibility.feasible ? "yes" : "no");
  if (epsilon_quiescence > 0.0) {
    std::printf("epsilon-quiescence %.3g: %llu subtask solves (approximate "
                "mode; objective within O(epsilon) of exact)\n",
                epsilon_quiescence,
                static_cast<unsigned long long>(run.subtask_solves));
  }
  std::printf("\n");
  std::printf("%-24s %12s %10s\n", "subtask", "latency(ms)", "share");
  for (const SubtaskInfo& sub : w.subtasks()) {
    const double latency = engine.latencies()[sub.id.value()];
    std::printf("%-24s %12.3f %10.4f\n", sub.name.c_str(), latency,
                model.share(sub.id).Share(latency));
  }
  std::printf("\n%-24s %14s %14s\n", "task", "critical path", "deadline");
  for (const TaskInfo& task : w.tasks()) {
    std::printf("%-24s %14.2f %14.1f\n", task.name.c_str(),
                CriticalPathLatency(w, task.id, engine.latencies()),
                task.critical_time_ms);
  }
  std::printf("\n%-16s %12s %10s\n", "resource", "share sum", "price");
  const auto report = engine.Feasibility();
  for (const ResourceInfo& resource : w.resources()) {
    std::printf("%-16s %9.4f/%.2f %10.2f\n", resource.name.c_str(),
                report.resource_share_sums[resource.id.value()],
                resource.capacity, engine.prices().mu[resource.id.value()]);
  }
  return run.converged && run.final_feasibility.feasible ? kExitSuccess
                                                         : kExitNotConverged;
}

// `lla solve --round-threads=N`: the distributed synchronous deployment —
// sharded resource agents on an in-process bus, with the coordinator fanning
// each round's controller solves, shard price updates and delivery waves
// across an N-thread pool (DESIGN.md §7.11).  The fixed point is
// bit-identical at any thread count, so N only changes wall-clock time.
int SolveDistributed(const Workload& w, UtilityVariant variant, int iters,
                     int round_threads, const DynamicsConfig& dynamics) {
  LatencyModel model(w);
  runtime::CoordinatorConfig config;
  config.solver.variant = variant;
  config.step.gamma0 = 3.0;
  // Accelerated mu dynamics for the shard agents (DESIGN.md §7.12); the
  // coordinator copies this into every agent's step config.
  config.dynamics = dynamics;
  config.bus.base_delay_ms = 0.0;
  config.record_history = false;
  config.num_shards = static_cast<int>(
      std::min<std::size_t>(8, w.resource_count()));
  config.round_threads = round_threads;
  runtime::Coordinator coordinator(w, model, config);
  const RunResult run = coordinator.RunSync(iters);
  // With record_history off, RunResult carries no per-round utility —
  // evaluate the enacted assignment directly.
  std::printf("%s after %d distributed rounds (%d round threads, %zu "
              "shards); utility %.3f (%s variant); feasible: %s\n",
              run.converged ? "converged" : "NOT converged", run.iterations,
              round_threads, coordinator.shard_count(),
              coordinator.CurrentUtility(), ToString(variant),
              run.final_feasibility.feasible ? "yes" : "no");
  const Assignment latencies = coordinator.CurrentAssignment();
  const PriceVector prices = coordinator.CurrentPrices();
  const auto report = coordinator.CurrentFeasibility();
  std::printf("\n%-24s %12s %10s\n", "subtask", "latency(ms)", "share");
  for (const SubtaskInfo& sub : w.subtasks()) {
    const double latency = latencies[sub.id.value()];
    std::printf("%-24s %12.3f %10.4f\n", sub.name.c_str(), latency,
                model.share(sub.id).Share(latency));
  }
  std::printf("\n%-24s %14s %14s\n", "task", "critical path", "deadline");
  for (const TaskInfo& task : w.tasks()) {
    std::printf("%-24s %14.2f %14.1f\n", task.name.c_str(),
                CriticalPathLatency(w, task.id, latencies),
                task.critical_time_ms);
  }
  std::printf("\n%-16s %12s %10s\n", "resource", "share sum", "price");
  for (const ResourceInfo& resource : w.resources()) {
    std::printf("%-16s %9.4f/%.2f %10.2f\n", resource.name.c_str(),
                report.resource_share_sums[resource.id.value()],
                resource.capacity, prices.mu[resource.id.value()]);
  }
  return run.converged && run.final_feasibility.feasible ? kExitSuccess
                                                         : kExitNotConverged;
}

int Checkpoint(const Workload& w, UtilityVariant variant, int iters,
               int threads, double epsilon_quiescence,
               const DynamicsConfig& dynamics,
               const std::string& snapshot_path, bool binary_format) {
  LatencyModel model(w);
  LlaConfig config;
  config.solver.variant = variant;
  config.gamma0 = 3.0;
  config.num_threads = threads;
  config.active_set.epsilon_quiescence = epsilon_quiescence;
  config.dynamics = dynamics;
  LlaEngine engine(w, model, config);
  const RunResult run = engine.Run(iters);
  const StateSnapshot snapshot = engine.Checkpoint();
  const Status saved = binary_format
                           ? SaveSnapshotBinaryToFile(snapshot, snapshot_path)
                           : SaveSnapshotToFile(snapshot, snapshot_path);
  if (!saved.ok()) {
    std::fprintf(stderr, "error saving snapshot %s: %s\n",
                 snapshot_path.c_str(), saved.error().c_str());
    return kExitRuntimeError;
  }
  std::printf("wrote %s (%s) at iteration %d (%s, utility %.6f); resume "
              "with `lla solve ... --restore=%s`\n",
              snapshot_path.c_str(), binary_format ? "binary b1" : "text v2",
              run.iterations, run.converged ? "converged" : "not converged",
              run.final_utility, snapshot_path.c_str());
  return kExitSuccess;
}

int Trace(const Workload& w, UtilityVariant variant, int iters,
          const std::string& out_path, int threads,
          const DynamicsConfig& dynamics) {
  obs::JsonlTraceSink sink(out_path);
  if (!sink.ok()) {
    std::fprintf(stderr, "error opening trace output %s\n", out_path.c_str());
    return kExitRuntimeError;
  }
  obs::MetricRegistry metrics;
  LatencyModel model(w);
  LlaConfig config;
  config.solver.variant = variant;
  config.gamma0 = 3.0;
  config.num_threads = threads;
  config.dynamics = dynamics;
  config.trace_sink = &sink;
  config.metrics = &metrics;

  obs::RunInfo info;
  info.label = ToString(variant);
  info.resource_count = w.resource_count();
  info.path_count = w.path_count();
  sink.OnRunBegin(info);
  LlaEngine engine(w, model, config);
  const RunResult run = engine.Run(iters);
  sink.OnRunEnd();

  std::fprintf(stderr, "%s after %d iterations; utility %.6f; feasible: %s\n",
               run.converged ? "converged" : "NOT converged", run.iterations,
               run.final_utility,
               run.final_feasibility.feasible ? "yes" : "no");
  std::fprintf(stderr, "%s", metrics.Snapshot().RenderText().c_str());
  return run.converged && run.final_feasibility.feasible ? kExitSuccess
                                                         : kExitNotConverged;
}

int Check(const Workload& w, int iters) {
  LatencyModel model(w);
  SchedulabilityConfig config;
  config.lla.gamma0 = 3.0;
  config.max_iterations = iters;
  SchedulabilityTester tester(w, model, config);
  const SchedulabilityReport report = tester.Test();
  std::printf("LLA verdict: %s\n  %s\n", ToString(report.verdict),
              report.explanation.c_str());

  Phase1Solver phase1(w, model);
  const Phase1Result result = phase1.Solve();
  std::printf("Phase-I cross-check: %s (max normalized violation %+.4f)\n",
              result.strictly_feasible ? "strictly feasible point exists"
                                       : "no interior point found",
              result.max_violation);
  return report.verdict == Schedulability::kSchedulable ? kExitSuccess
                                                        : kExitNotConverged;
}

int Simulate(const Workload& w, double seconds, bool use_sfs) {
  LatencyModel model(w);
  LlaConfig config;
  config.gamma0 = 3.0;
  LlaEngine engine(w, model, config);
  const RunResult run = engine.Run(12000);
  if (!run.final_feasibility.feasible) {
    std::printf("optimizer did not reach a feasible allocation; refusing to "
                "simulate\n");
    return kExitNotConverged;
  }
  std::vector<double> shares(w.subtask_count());
  for (const SubtaskInfo& sub : w.subtasks()) {
    shares[sub.id.value()] =
        model.share(sub.id).Share(engine.latencies()[sub.id.value()]);
  }
  sim::SimConfig sim_config;
  sim_config.duration_ms = seconds * 1000.0;
  if (use_sfs) sim_config.scheduler = sim::SchedulerKind::kSurplusFair;
  sim::SystemSimulator simulator(w, sim_config);
  const sim::SimResult result = simulator.Run(shares);

  std::printf("simulated %.1f s under the optimized shares (%s scheduler): "
              "%llu job sets\n\n",
              seconds, use_sfs ? "surplus-fair" : "fluid GPS",
              static_cast<unsigned long long>(result.job_sets_completed));
  std::printf("%-24s %10s %10s %10s %12s\n", "task", "p50(ms)", "p95(ms)",
              "p99(ms)", "deadline");
  for (const TaskInfo& task : w.tasks()) {
    const auto& q = result.task_latencies[task.id.value()];
    std::printf("%-24s %10.2f %10.2f %10.2f %12.1f  %s\n",
                task.name.c_str(), q.Value(0.50), q.Value(0.95),
                q.Value(0.99), task.critical_time_ms,
                q.Value(0.99) <= task.critical_time_ms ? "ok" : "MISS");
  }
  return 0;
}

int Churn(const Workload& w, std::size_t mutations, std::uint64_t seed,
          int threads) {
  const WorkloadSpecs specs = ExtractSpecs(w);

  runtime::ChurnConfig config;
  config.lla.step_policy = StepPolicyKind::kAdaptive;
  config.lla.gamma0 = 3.0;
  config.lla.record_history = false;
  config.lla.num_threads = threads;
  config.min_tasks = 1;
  config.admission.lla = config.lla;
  config.admission.probe_threads = threads;

  runtime::ChurnScriptConfig script_config;
  script_config.seed = seed;
  script_config.mutations = mutations;
  script_config.num_resources = static_cast<int>(specs.resources.size());
  auto script = runtime::MakeChurnScript(script_config);
  if (!script.ok()) {
    std::fprintf(stderr, "churn script failed: %s\n", script.error().c_str());
    return kExitRuntimeError;
  }

  auto driver =
      runtime::ChurnDriver::Create(specs.resources, specs.tasks, config);
  if (!driver.ok()) {
    std::fprintf(stderr, "churn driver failed: %s\n", driver.error().c_str());
    return kExitRuntimeError;
  }

  const auto start = std::chrono::steady_clock::now();
  const std::vector<runtime::ChurnRecord> records =
      driver.value().ApplyAll(script.value());
  const auto stop = std::chrono::steady_clock::now();
  const double wall_ms =
      std::chrono::duration<double, std::milli>(stop - start).count();

  std::size_t applied = 0, joins = 0, joins_admitted = 0, leaves = 0,
              perturbs = 0, structural_unconverged = 0;
  SampleQuantile reconv_iters;
  for (const runtime::ChurnRecord& record : records) {
    if (record.kind == runtime::ChurnKind::kJoin) {
      ++joins;
      if (record.applied) ++joins_admitted;
    } else if (record.kind == runtime::ChurnKind::kLeave) {
      ++leaves;
    } else {
      ++perturbs;
    }
    if (!record.applied) continue;
    ++applied;
    reconv_iters.Add(static_cast<double>(record.iterations));
    if (record.kind != runtime::ChurnKind::kWcetPerturb &&
        !record.converged) {
      ++structural_unconverged;
    }
  }
  std::printf("churn: %zu mutations in %.1f ms (%.1f mutations/s, "
              "admission probes included)\n",
              records.size(), wall_ms,
              wall_ms > 0.0
                  ? static_cast<double>(records.size()) / (wall_ms / 1e3)
                  : 0.0);
  std::printf("  applied %zu: %zu/%zu joins admitted, %zu leaves, %zu wcet "
              "corrections\n",
              applied, joins_admitted, joins, leaves, perturbs);
  std::printf("  re-convergence iterations: p50 %.0f  p90 %.0f  p99 %.0f\n",
              reconv_iters.Value(0.5), reconv_iters.Value(0.9),
              reconv_iters.Value(0.99));
  std::printf("  final system: %zu tasks, %zu subtasks\n",
              driver.value().workload().task_count(),
              driver.value().workload().subtask_count());
  if (structural_unconverged > 0) {
    std::printf("  %zu structural mutations did NOT re-converge\n",
                structural_unconverged);
    return kExitNotConverged;
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 3) return Usage();
  const std::string command = argv[1];

  if (command == "generate") {
    RandomWorkloadConfig config;
    for (int i = 3; i < argc; ++i) {
      if (std::strcmp(argv[i], "--seed") == 0 && i + 1 < argc) {
        config.seed = std::strtoull(argv[++i], nullptr, 10);
      } else if (std::strcmp(argv[i], "--tasks") == 0 && i + 1 < argc) {
        config.num_tasks = std::atoi(argv[++i]);
      } else if (std::strcmp(argv[i], "--resources") == 0 && i + 1 < argc) {
        config.num_resources = std::atoi(argv[++i]);
      } else {
        return Usage();
      }
    }
    if (config.num_tasks < 1 || config.num_resources < 1) return Usage();
    auto generated = MakeRandomWorkload(config);
    if (!generated.ok()) {
      std::fprintf(stderr, "generation failed: %s\n",
                   generated.error().c_str());
      return kExitRuntimeError;
    }
    const Status saved = SaveWorkloadToFile(generated.value(), argv[2]);
    if (!saved.ok()) {
      std::fprintf(stderr, "save failed: %s\n", saved.error().c_str());
      return kExitRuntimeError;
    }
    std::printf("wrote %s (%zu tasks, %zu subtasks, %d resources, "
                "seed %llu)\n",
                argv[2], generated.value().task_count(),
                generated.value().subtask_count(), config.num_resources,
                static_cast<unsigned long long>(config.seed));
    return 0;
  }

  // Reject unknown commands before touching the filesystem, so a bad command
  // name is a usage error (2), not a load error (3).
  if (command != "describe" && command != "solve" && command != "check" &&
      command != "simulate" && command != "trace" &&
      command != "checkpoint" && command != "churn") {
    return Usage();
  }

  auto workload = Load(argv[2]);
  if (!workload.ok()) return kExitLoadError;
  const Workload& w = workload.value();

  if (command == "describe") return Describe(w);

  if (command == "solve" || command == "checkpoint") {
    // `checkpoint` takes the snapshot path as its second positional
    // argument; flags start after it.
    const bool is_checkpoint = command == "checkpoint";
    std::string snapshot_path;
    int first_flag = 3;
    if (is_checkpoint) {
      if (argc < 4 || std::strncmp(argv[3], "--", 2) == 0) return Usage();
      snapshot_path = argv[3];
      first_flag = 4;
    }
    UtilityVariant variant = UtilityVariant::kPathWeighted;
    int iters = is_checkpoint ? 1000 : 12000;
    int threads = 1;
    double epsilon_quiescence = 0.0;
    DynamicsConfig dynamics;
    std::string restore_path;
    bool binary_format = false;
    bool threads_seen = false;
    int round_threads = 0;
    bool round_threads_seen = false;
    bool engine_only_flag_seen = false;
    for (int i = first_flag; i < argc; ++i) {
      bool is_threads = false;
      bool is_round_threads = false;
      bool is_epsilon = false;
      bool is_dynamics = false;
      bool is_momentum = false;
      if (std::strcmp(argv[i], "--variant") == 0 && i + 1 < argc) {
        variant = std::strcmp(argv[++i], "sum") == 0
                      ? UtilityVariant::kSum
                      : UtilityVariant::kPathWeighted;
      } else if (std::strcmp(argv[i], "--iters") == 0 && i + 1 < argc) {
        iters = std::atoi(argv[++i]);
      } else if (!is_checkpoint &&
                 std::strncmp(argv[i], "--restore=", 10) == 0) {
        restore_path = argv[i] + 10;
        if (restore_path.empty()) return Usage();
        engine_only_flag_seen = true;
      } else if (is_checkpoint &&
                 std::strncmp(argv[i], "--format=", 9) == 0) {
        // Strict: exactly "text" or "binary", anything else is usage (2).
        const char* format = argv[i] + 9;
        if (std::strcmp(format, "binary") == 0) {
          binary_format = true;
        } else if (std::strcmp(format, "text") != 0) {
          return Usage();
        }
      } else if (!MatchThreadsFlag(argc, argv, &i, &threads, &is_threads)) {
        return Usage();
      } else if (is_threads) {
        // A repeated --threads is ambiguous (which value wins?); reject it
        // instead of silently taking the last one.
        if (threads_seen) return Usage();
        threads_seen = true;
        engine_only_flag_seen = true;
      } else if (!is_checkpoint &&
                 !MatchRoundThreadsFlag(argc, argv, &i, &round_threads,
                                        &is_round_threads)) {
        return Usage();
      } else if (is_round_threads) {
        if (round_threads_seen) return Usage();
        round_threads_seen = true;
      } else if (!MatchEpsilonFlag(argc, argv, &i, &epsilon_quiescence,
                                   &is_epsilon)) {
        return Usage();
      } else if (is_epsilon) {
        engine_only_flag_seen = true;
      } else if (!MatchDynamicsFlag(argc, argv, &i, &dynamics.kind,
                                    &is_dynamics)) {
        return Usage();
      } else if (is_dynamics) {
        // Valid on both paths: the engine's PriceDynamicsPolicy and the
        // distributed agents' per-resource dynamics (DESIGN.md §7.12).
      } else if (!MatchMomentumFlag(argc, argv, &i, &dynamics.momentum,
                                    &is_momentum)) {
        return Usage();
      } else if (!is_momentum) {
        return Usage();
      }
    }
    if (iters < 1) return Usage();
    if (is_checkpoint) {
      return Checkpoint(w, variant, iters, threads, epsilon_quiescence,
                        dynamics, snapshot_path, binary_format);
    }
    if (round_threads_seen) {
      // The distributed path has no engine to thread, restore, or damp;
      // mixing those flags in would silently do nothing, so reject.
      // (--dynamics/--momentum ARE honored here: they configure the shard
      // agents' accelerated mu updates.)
      if (engine_only_flag_seen) return Usage();
      return SolveDistributed(w, variant, iters, round_threads, dynamics);
    }
    return Solve(w, variant, iters, threads, epsilon_quiescence, dynamics,
                 restore_path);
  }

  if (command == "trace") {
    UtilityVariant variant = UtilityVariant::kPathWeighted;
    int iters = 12000;
    int threads = 1;
    DynamicsConfig dynamics;
    std::string out_path = "-";
    for (int i = 3; i < argc; ++i) {
      bool is_threads = false;
      bool is_dynamics = false;
      bool is_momentum = false;
      if (std::strcmp(argv[i], "--variant") == 0 && i + 1 < argc) {
        variant = std::strcmp(argv[++i], "sum") == 0
                      ? UtilityVariant::kSum
                      : UtilityVariant::kPathWeighted;
      } else if (std::strcmp(argv[i], "--iters") == 0 && i + 1 < argc) {
        iters = std::atoi(argv[++i]);
      } else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
        out_path = argv[++i];
      } else if (!MatchThreadsFlag(argc, argv, &i, &threads, &is_threads)) {
        return Usage();
      } else if (is_threads) {
      } else if (!MatchDynamicsFlag(argc, argv, &i, &dynamics.kind,
                                    &is_dynamics)) {
        return Usage();
      } else if (is_dynamics) {
      } else if (!MatchMomentumFlag(argc, argv, &i, &dynamics.momentum,
                                    &is_momentum)) {
        return Usage();
      } else if (!is_momentum) {
        return Usage();
      }
    }
    if (iters < 1) return Usage();
    return Trace(w, variant, iters, out_path, threads, dynamics);
  }

  if (command == "check") {
    int iters = 2000;
    for (int i = 3; i < argc; ++i) {
      if (std::strcmp(argv[i], "--iters") == 0 && i + 1 < argc) {
        iters = std::atoi(argv[++i]);
      } else {
        return Usage();
      }
    }
    if (iters < 1) return Usage();
    return Check(w, iters);
  }

  if (command == "simulate") {
    if (argc < 4) return Usage();
    const double seconds = std::atof(argv[3]);
    if (seconds <= 0.0) return Usage();
    bool use_sfs = false;
    for (int i = 4; i < argc; ++i) {
      if (std::strcmp(argv[i], "--sfs") == 0) {
        use_sfs = true;
      } else {
        return Usage();
      }
    }
    return Simulate(w, seconds, use_sfs);
  }

  if (command == "churn") {
    std::size_t mutations = 50;
    std::uint64_t seed = 1;
    int threads = 1;
    for (int i = 3; i < argc; ++i) {
      bool is_threads = false;
      if (std::strncmp(argv[i], "--mutations=", 12) == 0) {
        const int value = std::atoi(argv[i] + 12);
        if (value < 1) return Usage();
        mutations = static_cast<std::size_t>(value);
      } else if (std::strncmp(argv[i], "--seed=", 7) == 0) {
        seed = std::strtoull(argv[i] + 7, nullptr, 10);
      } else if (!MatchThreadsFlag(argc, argv, &i, &threads, &is_threads)) {
        return Usage();
      } else if (!is_threads) {
        return Usage();
      }
    }
    return Churn(w, mutations, seed, threads);
  }

  return Usage();
}
