// Online adaptation, end to end: the distributed runtime (controllers and
// resource agents exchanging prices over a lossy bus) combined with online
// model error correction against the discrete-event execution substrate —
// the full Sec. 4 + Sec. 6 stack in one program.
//
// Phase 1: the prototype workload converges distributedly (async agents,
//          1 ms +- 2 ms message delay, 1% loss).
// Phase 2: the enacted shares run on the DES; the corrector learns the
//          model error; the optimizer re-converges and frees CPU.
#include <cstdio>

#include "correction/error_corrector.h"
#include "model/evaluation.h"
#include "runtime/coordinator.h"
#include "sim/system_sim.h"
#include "workloads/paper.h"

using namespace lla;

int main() {
  std::printf("== online adaptation: distributed optimizer + model "
              "correction ==\n\n");

  auto workload = MakePrototypeWorkload();
  if (!workload.ok()) {
    std::printf("workload error: %s\n", workload.error().c_str());
    return 1;
  }
  const Workload& w = workload.value();
  LatencyModel model(w);

  runtime::CoordinatorConfig config;
  config.step.gamma0 = 3.0;
  config.bus.base_delay_ms = 1.0;
  config.bus.jitter_ms = 2.0;
  config.bus.drop_probability = 0.01;
  config.bus.seed = 99;
  runtime::Coordinator coordinator(w, model, config);
  correction::ErrorCorrector corrector(w, &model, {});

  const auto print_shares = [&](const char* phase) {
    const Assignment assignment = coordinator.CurrentAssignment();
    std::printf("%-34s fast share %.4f, slow share %.4f  (utility %.1f)\n",
                phase, model.share(SubtaskId(0u)).Share(assignment[0]),
                model.share(SubtaskId(6u)).Share(assignment[6]),
                coordinator.CurrentUtility());
  };

  // Phase 1: distributed convergence on the uncorrected model.
  coordinator.RunAsync(120000.0);  // 2 minutes of virtual time
  print_shares("uncorrected distributed optimum:");

  // Phase 2: alternate execution windows and correction rounds.
  for (int window = 0; window < 8; ++window) {
    // Enact the current allocation and execute 20 s on the substrate.
    Assignment assignment = coordinator.CurrentAssignment();
    std::vector<double> shares(w.subtask_count());
    for (const SubtaskInfo& sub : w.subtasks()) {
      shares[sub.id.value()] =
          model.share(sub.id).Share(assignment[sub.id.value()]);
    }
    sim::SimConfig sim_config;
    sim_config.duration_ms = 20000.0;
    sim_config.seed = 1000 + window;
    sim::SystemSimulator simulator(w, sim_config);
    const sim::SimResult result = simulator.Run(shares);

    // Learn the error; the runtime's controllers see the corrected model
    // on their next timer tick (they share the LatencyModel).
    corrector.Observe(result.subtask_latencies, shares);
    coordinator.RunAsync(30000.0);

    char label[64];
    std::snprintf(label, sizeof(label), "after correction window %d:",
                  window + 1);
    print_shares(label);
  }

  std::printf("\nlearned additive model errors (ms):\n");
  for (const SubtaskInfo& sub : w.subtasks()) {
    if (sub.id.value() % 3 != 0) continue;  // one subtask per task
    std::printf("  %-10s %8.2f\n", sub.name.c_str(),
                corrector.error(sub.id));
  }

  const auto& stats = coordinator.bus().stats();
  std::printf("\nprotocol traffic: %llu messages (%llu dropped), %.1f KiB\n",
              static_cast<unsigned long long>(stats.sent),
              static_cast<unsigned long long>(stats.dropped),
              stats.bytes / 1024.0);
  std::printf("\nThe fast tasks end at their 0.20 sustainable-minimum share "
              "and the slow\ntasks absorb the recovered headroom — the "
              "Figure 8 behaviour, produced by\nthe fully distributed "
              "deployment.\n");
  return 0;
}
