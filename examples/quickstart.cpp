// Quickstart: define a tiny distributed real-time workload, run LLA, and
// read out the optimal latency assignment and resource shares.
//
//   cmake -B build -G Ninja && cmake --build build --target quickstart
//   ./build/examples/quickstart
//
// The scenario: a two-stage pipeline (parse on cpu0, publish over link0)
// and an analytics task sharing cpu0, both triggered periodically.
#include <cstdio>

#include "core/engine.h"
#include "model/evaluation.h"
#include "workloads/paper.h"  // only for style reference; not required

using namespace lla;

int main() {
  // 1. Describe the resources.  Capacity is the fraction available to the
  //    managed tasks; lag is the proportional-share scheduling overhead.
  std::vector<ResourceSpec> resources = {
      {"cpu0", ResourceKind::kCpu, /*capacity=*/0.9, /*lag_ms=*/1.0},
      {"link0", ResourceKind::kNetworkLink, 1.0, 0.5},
  };

  // 2. Describe the tasks.  Each subtask names the resource it consumes and
  //    its worst-case execution (or transmission) time.  min_share is the
  //    sustainable floor (arrival rate x WCET) that keeps queues bounded.
  TaskSpec pipeline;
  pipeline.name = "market-pipeline";
  pipeline.critical_time_ms = 40.0;
  pipeline.subtasks = {
      {"parse", ResourceId(0u), /*wcet_ms=*/4.0, /*min_share=*/0.08},
      {"publish", ResourceId(1u), 6.0, 0.12},
  };
  pipeline.edges = {{0, 1}};  // parse -> publish
  // Utility: how much a given end-to-end latency is worth.  f(x) = 2C - x
  // is the paper's elastic shape: every millisecond saved adds benefit.
  pipeline.utility = MakePaperSimUtility(pipeline.critical_time_ms);
  pipeline.trigger = TriggerSpec::Periodic(50.0);

  TaskSpec analytics;
  analytics.name = "analytics";
  analytics.critical_time_ms = 200.0;
  analytics.subtasks = {{"model-update", ResourceId(0u), 9.0, 0.09}};
  analytics.utility = MakePaperSimUtility(analytics.critical_time_ms);
  analytics.trigger = TriggerSpec::Periodic(100.0);

  // 3. Validate and build the workload.
  auto workload = Workload::Create(resources, {pipeline, analytics});
  if (!workload.ok()) {
    std::printf("invalid workload: %s\n", workload.error().c_str());
    return 1;
  }
  const Workload& w = workload.value();

  // 4. Run the optimizer.  LatencyModel holds the share model (Eq. 10);
  //    the engine iterates latency allocation + price computation until
  //    the utility settles.
  LatencyModel model(w);
  LlaConfig config;  // adaptive step sizes by default
  LlaEngine engine(w, model, config);
  const RunResult result = engine.Run(/*max_iterations=*/5000);

  std::printf("converged: %s (after %d iterations)\n",
              result.converged ? "yes" : "no", result.iterations);
  std::printf("total utility: %.2f\n\n", result.final_utility);

  // 5. Read the assignment: per-subtask latency budgets and the shares to
  //    enact in the proportional-share schedulers.
  std::printf("%-28s %12s %10s\n", "subtask", "latency(ms)", "share");
  for (const SubtaskInfo& sub : w.subtasks()) {
    const double latency = engine.latencies()[sub.id.value()];
    std::printf("%-28s %12.2f %10.3f\n", sub.name.c_str(), latency,
                model.share(sub.id).Share(latency));
  }

  std::printf("\n%-28s %14s %14s\n", "task", "end-to-end(ms)",
              "critical time");
  for (const TaskInfo& task : w.tasks()) {
    std::printf("%-28s %14.2f %14.1f\n", task.name.c_str(),
                CriticalPathLatency(w, task.id, engine.latencies()),
                task.critical_time_ms);
  }

  std::printf("\n%-28s %12s\n", "resource", "share sum");
  const FeasibilityReport report = engine.Feasibility();
  for (const ResourceInfo& resource : w.resources()) {
    std::printf("%-28s %9.3f / %.2f\n", resource.name.c_str(),
                report.resource_share_sums[resource.id.value()],
                resource.capacity);
  }
  return 0;
}
