// Schedulability testing with LLA (paper Sec. 5.4): before deploying a
// workload, run the optimizer against the resource model — convergence to a
// feasible assignment certifies schedulability; persistent constraint
// violation certifies the opposite.
//
// Usage: schedulability_check [replication] [scale_deadlines 0|1]
//   default: checks the paper workload at x1, x2 (scaled + unscaled), x4.
#include <cstdio>
#include <cstdlib>

#include "core/schedulability.h"
#include "workloads/paper.h"

using namespace lla;

namespace {

void Check(int replication, bool scale_deadlines) {
  auto workload = MakeScaledSimWorkload(replication, scale_deadlines);
  if (!workload.ok()) {
    std::printf("workload error: %s\n", workload.error().c_str());
    return;
  }
  const Workload& w = workload.value();
  LatencyModel model(w);
  SchedulabilityConfig config;
  config.lla.gamma0 = 3.0;
  config.max_iterations = scale_deadlines ? 25000 : 2000;
  SchedulabilityTester tester(w, model, config);
  const SchedulabilityReport report = tester.Test();

  std::printf("%zu tasks, deadlines %s: %-15s (%s)\n", w.task_count(),
              scale_deadlines ? "scaled  " : "original",
              ToString(report.verdict), report.explanation.c_str());
  if (report.verdict == Schedulability::kUnschedulable &&
      !report.task_path_ratios.empty()) {
    std::printf("  critical-path / critical-time per task:");
    for (double ratio : report.task_path_ratios) {
      std::printf(" %.2f", ratio);
    }
    std::printf("\n");
  }
}

}  // namespace

int main(int argc, char** argv) {
  std::printf("== LLA as a schedulability test ==\n\n");
  if (argc >= 2) {
    const int replication = std::atoi(argv[1]);
    const bool scale = argc >= 3 ? std::atoi(argv[2]) != 0 : true;
    if (replication < 1) {
      std::printf("usage: %s [replication >= 1] [scale_deadlines 0|1]\n",
                  argv[0]);
      return 1;
    }
    Check(replication, scale);
    return 0;
  }

  Check(1, true);
  Check(2, true);   // Figure 6 configuration: schedulable
  Check(2, false);  // Figure 7 configuration: unschedulable
  Check(4, false);
  return 0;
}
