// Admission control layered on top of LLA (paper Sec. 3.2 assumes this
// layer exists; we build it): tenants ask to run tasks on a shared fabric;
// each candidate is admitted only if the combined workload stays
// schedulable — tested by running the optimizer itself, exactly the paper's
// Sec. 5.4 methodology — optionally with a net-benefit bar.
#include <cstdio>

#include "admission/admission.h"
#include "model/trigger.h"
#include "model/utility.h"

using namespace lla;
using namespace lla::admission;

namespace {

TaskSpec Tenant(const std::string& name, double wcet_ms, double critical_ms,
                double rate_per_s, double value_slope) {
  TaskSpec task;
  task.name = name;
  task.critical_time_ms = critical_ms;
  task.utility = std::make_shared<LinearUtility>(
      2.0 * critical_ms * value_slope, value_slope);
  task.trigger = TriggerSpec::Periodic(1000.0 / rate_per_s);
  const double min_share = rate_per_s * wcet_ms / 1000.0;
  task.subtasks = {{name + "/ingest", ResourceId(0u), wcet_ms, min_share},
                   {name + "/process", ResourceId(1u), wcet_ms, min_share},
                   {name + "/publish", ResourceId(2u), wcet_ms / 2.0,
                    min_share / 2.0}};
  task.edges = {{0, 1}, {1, 2}};
  return task;
}

void Try(AdmissionController& controller, const TaskSpec& task) {
  const AdmissionReport report = controller.TryAdmit(task);
  std::printf("%-14s -> %-24s %s\n", task.name.c_str(),
              ToString(report.decision), report.reason.c_str());
}

}  // namespace

int main() {
  std::printf("== admission control on a 3-node fabric ==\n\n");
  std::vector<ResourceSpec> resources = {
      {"ingest-cpu", ResourceKind::kCpu, 0.9, 1.0},
      {"process-cpu", ResourceKind::kCpu, 0.9, 1.0},
      {"publish-link", ResourceKind::kNetworkLink, 0.95, 0.5},
  };

  AdmissionConfig config;
  config.lla.gamma0 = 3.0;
  AdmissionController controller(resources, config);

  // A stream of tenants with mixed demands.
  Try(controller, Tenant("alerts", 4.0, 60.0, 50.0, 3.0));    // 0.2 share
  Try(controller, Tenant("pricing", 5.0, 80.0, 40.0, 2.0));   // 0.2
  Try(controller, Tenant("audit", 6.0, 200.0, 30.0, 1.0));    // 0.18
  Try(controller, Tenant("greedy", 8.0, 90.0, 60.0, 1.0));    // 0.48: too much
  Try(controller, Tenant("deadline0", 4.0, 10.0, 10.0, 1.0)); // impossible C
  Try(controller, Tenant("modest", 2.0, 150.0, 20.0, 1.0));   // 0.04: fits

  std::printf("\nadmitted set:");
  for (const std::string& name : controller.TaskNames()) {
    std::printf(" %s", name.c_str());
  }
  std::printf("\noptimal utility of the admitted set: %.2f\n",
              controller.CurrentUtility());

  // A tenant leaves; the big one can now fit.
  std::printf("\n'audit' departs; retrying 'greedy':\n");
  controller.Remove("audit");
  Try(controller, Tenant("greedy", 8.0, 90.0, 60.0, 1.0));
  std::printf("final utility: %.2f with %zu tasks\n",
              controller.CurrentUtility(), controller.task_count());

  // Net-benefit policy demo: a low-value tenant that would squeeze the
  // high-value ones is turned away even though it is schedulable.
  std::printf("\nwith a net-benefit bar of +50 utility:\n");
  AdmissionConfig strict = config;
  strict.policy = Policy::kNetBenefit;
  strict.min_net_benefit = 50.0;
  AdmissionController selective(resources, strict);
  Try(selective, Tenant("vip", 4.0, 50.0, 50.0, 5.0));
  Try(selective, Tenant("freeloader", 6.0, 300.0, 30.0, 0.05));
  return 0;
}
