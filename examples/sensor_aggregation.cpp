// Sensor aggregation (the paper's pull-based model, Sec. 5.1 task 2) with
// percentile-based timeliness (Sec. 2.1): the SLA is on the 99th percentile
// of end-to-end latency, so each subtask must budget for a tighter
// per-subtask percentile (p^(1/n) for an n-hop path).  The example
// optimizes with LLA and then *validates the percentile math* by executing
// the allocation on the discrete-event substrate and measuring the actual
// end-to-end p99.
#include <cstdio>

#include "core/engine.h"
#include "model/evaluation.h"
#include "model/percentile.h"
#include "sim/system_sim.h"

using namespace lla;

int main() {
  std::printf("== sensor aggregation with percentile SLAs ==\n\n");

  // Query node -> aggregator -> {sensor hub A, sensor hub B}; hub A feeds a
  // post-processor.  One CPU or link per hop.
  std::vector<ResourceSpec> resources = {
      {"query-cpu", ResourceKind::kCpu, 0.9, 1.0},
      {"collect-link", ResourceKind::kNetworkLink, 0.95, 0.5},
      {"hub-a-cpu", ResourceKind::kCpu, 0.9, 1.0},
      {"hub-b-cpu", ResourceKind::kCpu, 0.9, 1.0},
      {"post-cpu", ResourceKind::kCpu, 0.9, 1.0},
  };

  TaskSpec aggregate;
  aggregate.name = "aggregate";
  aggregate.critical_time_ms = 80.0;
  aggregate.subtasks = {
      {"issue-query", ResourceId(0u), 2.0, 0.05},
      {"collect", ResourceId(1u), 4.0, 0.08},
      {"hub-a", ResourceId(2u), 5.0, 0.10},
      {"hub-b", ResourceId(3u), 6.0, 0.12},
      {"post-process", ResourceId(4u), 5.0, 0.10},
  };
  aggregate.edges = {{0, 1}, {1, 2}, {1, 3}, {2, 4}};
  aggregate.utility = MakePaperSimUtility(80.0);
  aggregate.trigger = TriggerSpec::Periodic(50.0);

  auto workload = Workload::Create(std::move(resources), {aggregate});
  if (!workload.ok()) {
    std::printf("workload error: %s\n", workload.error().c_str());
    return 1;
  }
  const Workload& w = workload.value();

  // Percentile composition (Sec. 2.1): the longest path has 4 hops, so a
  // p99 end-to-end target needs each subtask to hold its budget at the
  // per-subtask percentile q = 0.99^(1/4).
  const double sla_fraction = 0.99;
  std::printf("per-subtask percentile needed for an end-to-end p99 target:\n");
  for (const PathInfo& path : w.paths()) {
    const int hops = static_cast<int>(path.subtasks.size());
    std::printf("  %d-hop path: q = %.4f (paper notation: %.2fth "
                "percentile)\n",
                hops, PerSubtaskPercentile(sla_fraction, hops),
                PerSubtaskPercentilePct(99.0, hops));
  }

  // Optimize the latency budgets.
  LatencyModel model(w);
  LlaEngine engine(w, model, LlaConfig{});
  const RunResult result = engine.Run(8000);
  std::printf("\nLLA: converged=%s, utility %.2f\n",
              result.converged ? "yes" : "no", result.final_utility);
  std::printf("%-16s %12s %8s\n", "subtask", "budget(ms)", "share");
  std::vector<double> shares(w.subtask_count());
  for (const SubtaskInfo& sub : w.subtasks()) {
    const double latency = engine.latencies()[sub.id.value()];
    shares[sub.id.value()] = model.share(sub.id).Share(latency);
    std::printf("%-16s %12.2f %8.3f\n", sub.name.c_str(), latency,
                shares[sub.id.value()]);
  }

  // Validate on the execution substrate: enact the shares, run 60 s, and
  // compare measured percentiles against the budgets.
  sim::SimConfig sim_config;
  sim_config.duration_ms = 60000.0;
  sim_config.seed = 4242;
  sim::SystemSimulator simulator(w, sim_config);
  const sim::SimResult sim_result = simulator.Run(shares);

  std::printf("\nmeasured on the DES substrate (60 s, %llu queries):\n",
              static_cast<unsigned long long>(sim_result.job_sets_completed));
  const int longest_path = 4;
  const double q = PerSubtaskPercentile(sla_fraction, longest_path);
  std::printf("%-16s %14s %16s\n", "subtask", "budget(ms)",
              "measured q-tile");
  for (const SubtaskInfo& sub : w.subtasks()) {
    std::printf("%-16s %14.2f %16.2f\n", sub.name.c_str(),
                engine.latencies()[sub.id.value()],
                sim_result.subtask_latencies[sub.id.value()].Value(q));
  }
  const auto& e2e = sim_result.task_latencies[0];
  std::printf("\nend-to-end:  p50 %.1f ms   p99 %.1f ms   SLA %.0f ms   "
              "-> %s\n",
              e2e.Value(0.5), e2e.Value(sla_fraction),
              aggregate.critical_time_ms,
              e2e.Value(sla_fraction) <= aggregate.critical_time_ms
                  ? "SLA met"
                  : "SLA MISSED");
  std::printf("\n(The measured percentiles sit well below the budgets — the "
              "conservative\nmodel headroom the paper's error correction "
              "recovers; see bench_fig8.)\n");
  return 0;
}
