// Program trading (the paper's motivating application, Sec. 1): market data
// fan-out, strategy analysis and order submission compete for CPUs and
// network links.  Demonstrates LLA's adaptivity: when a link degrades at
// runtime, the continuously-running optimizer re-prices it and shifts
// latency budgets — the elastic analytics task absorbs the loss, the
// order path keeps its deadline.
#include <cstdio>

#include "core/engine.h"
#include "model/evaluation.h"
#include "model/workload.h"

using namespace lla;

namespace {

Expected<Workload> BuildTradingSystem(double feed_link_capacity) {
  std::vector<ResourceSpec> resources = {
      {"feed-handler-cpu", ResourceKind::kCpu, 0.95, 1.0},   // r0
      {"feed-link", ResourceKind::kNetworkLink, feed_link_capacity, 0.5},
      {"strategy-cpu", ResourceKind::kCpu, 0.95, 1.0},       // r2
      {"order-link", ResourceKind::kNetworkLink, 1.0, 0.5},  // r3
      {"gateway-cpu", ResourceKind::kCpu, 0.9, 1.0},         // r4
  };

  // Market data task: decode ticks, multicast to strategy + risk engines.
  TaskSpec market_data;
  market_data.name = "market-data";
  market_data.critical_time_ms = 20.0;
  market_data.subtasks = {
      {"decode", ResourceId(0u), 2.0, 0.10},
      {"fanout", ResourceId(1u), 3.0, 0.15},
      {"strategy-ingest", ResourceId(2u), 2.5, 0.12},
  };
  market_data.edges = {{0, 1}, {1, 2}};
  market_data.utility = MakePaperSimUtility(20.0);
  market_data.trigger = TriggerSpec::Poisson(50.0);

  // Order path: strategy decision -> order link -> exchange gateway.
  TaskSpec orders;
  orders.name = "order-path";
  orders.critical_time_ms = 15.0;
  orders.subtasks = {
      {"decision", ResourceId(2u), 2.0, 0.10},
      {"order-wire", ResourceId(3u), 2.0, 0.08},
      {"gateway", ResourceId(4u), 2.5, 0.10},
  };
  orders.edges = {{0, 1}, {1, 2}};
  // Orders are the most valuable traffic: steeper slope.
  orders.utility = std::make_shared<LinearUtility>(4.0 * 15.0, 3.0);
  orders.trigger = TriggerSpec::Bursty(100.0, 4, 2.0);

  // Risk/analytics: elastic background consumer of the same fabric.
  TaskSpec analytics;
  analytics.name = "risk-analytics";
  analytics.critical_time_ms = 120.0;
  analytics.subtasks = {
      {"risk-ingest", ResourceId(1u), 2.0, 0.05},
      {"risk-model", ResourceId(4u), 8.0, 0.08},
  };
  analytics.edges = {{0, 1}};
  analytics.utility = MakePaperSimUtility(120.0);
  analytics.trigger = TriggerSpec::Periodic(100.0);

  return Workload::Create(std::move(resources),
                          {market_data, orders, analytics});
}

void Report(const Workload& w, const LatencyModel& model,
            const LlaEngine& engine) {
  std::printf("%-22s %10s %8s   %-18s %12s\n", "subtask", "lat(ms)", "share",
              "task", "e2e/deadline");
  for (const TaskInfo& task : w.tasks()) {
    for (SubtaskId sid : task.subtasks) {
      const SubtaskInfo& sub = w.subtask(sid);
      const double latency = engine.latencies()[sid.value()];
      const bool first = sid == task.subtasks.front();
      char e2e[48] = "";
      if (first) {
        std::snprintf(e2e, sizeof(e2e), "%.1f / %.0f ms",
                      CriticalPathLatency(w, task.id, engine.latencies()),
                      task.critical_time_ms);
      }
      std::printf("%-22s %10.2f %8.3f   %-18s %12s\n", sub.name.c_str(),
                  latency, model.share(sid).Share(latency),
                  first ? task.name.c_str() : "", e2e);
    }
  }
}

}  // namespace

int main() {
  std::printf("== program trading: latency assignment across a trading "
              "fabric ==\n\n");

  auto workload = BuildTradingSystem(/*feed_link_capacity=*/1.0);
  if (!workload.ok()) {
    std::printf("workload error: %s\n", workload.error().c_str());
    return 1;
  }
  {
    const Workload& w = workload.value();
    LatencyModel model(w);
    LlaEngine engine(w, model, LlaConfig{});
    const RunResult result = engine.Run(8000);
    std::printf("healthy fabric (feed link at 100%%), utility %.2f, "
                "converged=%s:\n\n",
                result.final_utility, result.converged ? "yes" : "no");
    Report(w, model, engine);
  }

  // The feed link loses 40% of its capacity (failover onto a backup with
  // less headroom).  LLA runs continuously; here we simply rebuild and
  // re-optimize — in the distributed runtime the resource agent would just
  // report a smaller B_r and prices would adapt in place.
  auto degraded = BuildTradingSystem(/*feed_link_capacity=*/0.6);
  {
    const Workload& w = degraded.value();
    LatencyModel model(w);
    LlaEngine engine(w, model, LlaConfig{});
    const RunResult result = engine.Run(8000);
    std::printf("\ndegraded feed link (60%% capacity), utility %.2f, "
                "converged=%s:\n\n",
                result.final_utility, result.converged ? "yes" : "no");
    Report(w, model, engine);
    std::printf(
        "\nNote how the fan-out and risk-ingest latencies grew (the link is "
        "now\nexpensive) while the order path kept its budget — its utility "
        "slope is\nsteepest, so LLA protects it.\n");
  }
  return 0;
}
