// Reproduces Figure 6: convergence as the number of tasks scales (3, 6, 12
// tasks; critical times scaled to keep the workload schedulable).
//
// Paper claims: convergence speed does not depend on the task count, and
// the converged utility grows linearly with the number of tasks.
#include <cstdio>
#include <memory>
#include <thread>

#include "bench_util.h"
#include "core/engine.h"
#include "core/engine_batch.h"
#include "workloads/paper.h"

using namespace lla;

int main() {
  bench::PrintHeader(
      "bench_fig6_scalability — scaling the number of tasks",
      "Figure 6 (convergence for 3 / 6 / 12 task workloads)",
      "settling iteration roughly independent of task count; converged "
      "utility grows ~linearly in the number of tasks");

  struct Row {
    int tasks;
    double final_utility;
    int settle1;
    int settle5;
    bool feasible;
  };
  std::vector<Row> rows;
  std::vector<std::vector<IterationStats>> traces;
  std::vector<std::string> labels;

  // The three replication sizes are independent optimizations: run them as
  // one EngineBatch (bit-identical to stepping each sequentially).
  std::vector<std::unique_ptr<Workload>> workloads;
  std::vector<std::unique_ptr<LatencyModel>> models;
  EngineBatch batch(std::max(1u, std::thread::hardware_concurrency()));
  for (int replication : {1, 2, 4}) {
    auto workload = MakeScaledSimWorkload(replication,
                                          /*scale_critical_times=*/true);
    if (!workload.ok()) {
      std::printf("workload error: %s\n", workload.error().c_str());
      return 1;
    }
    workloads.push_back(
        std::make_unique<Workload>(std::move(workload.value())));
    models.push_back(std::make_unique<LatencyModel>(*workloads.back()));
    LlaConfig config = bench::PaperLlaConfig();
    config.convergence.rel_tol = 1e-9;
    batch.Add(*workloads.back(), *models.back(), config);
  }
  const int iterations = 6000;
  batch.StepAll(iterations);
  for (std::size_t i = 0; i < batch.size(); ++i) {
    LlaEngine& engine = batch.engine(i);
    const Workload& w = *workloads[i];
    rows.push_back({static_cast<int>(w.task_count()),
                    engine.history().back().total_utility,
                    bench::SettleIteration(engine.history(), 0.01),
                    bench::SettleIteration(engine.history(), 0.05),
                    engine.Feasibility().feasible});
    traces.push_back(engine.history());
    labels.push_back(std::to_string(w.task_count()) + " tasks");
  }

  std::printf("\nUtility traces (sampled):\n");
  for (std::size_t i = 0; i < traces.size(); ++i) {
    bench::PrintUtilitySeries(labels[i], traces[i]);
  }

  std::printf("\n%-10s %16s %14s %14s %10s %18s\n", "tasks",
              "final utility", "to 1%-band", "to 5%-band", "feasible",
              "utility per task");
  for (const Row& row : rows) {
    std::printf("%-10d %16.2f %14d %14d %10s %18.2f\n", row.tasks,
                row.final_utility, row.settle1, row.settle5,
                row.feasible ? "yes" : "no", row.final_utility / row.tasks);
  }
  std::printf(
      "\nNote: with critical times scaled by the replication factor, the\n"
      "per-task utility offset (k*C_i) also scales, so utility-per-task\n"
      "changes with C; linear growth in the task count at fixed C is the\n"
      "paper's claim and is visible in the 3->6->12 progression above.\n");
  return 0;
}
