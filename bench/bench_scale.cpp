// bench_scale — the 10^3 / 10^4 / 10^5-subtask scale tier.
//
// For each size of the random_100k family (ScaledRandomWorkloadConfig) this
// records into BENCH_scale.json:
//   * workload generation time and engine solve throughput (dense-mode
//     steps/sec, plus final utility/feasibility after a bounded run),
//   * snapshot size and serialize+deserialize time, text vs. binary b1,
//   * coordinator sync-round latency, messages/round and bytes/round for the
//     classic one-agent-per-resource deployment vs. the sharded one.
//
// Acceptance gates (evaluated on the largest size; failure exits 1):
//   * binary snapshot >= 5x smaller than text,
//   * binary serialize+deserialize >= 10x faster than text,
//   * binary round-trip bitwise-lossless,
//   * sharded coordinator uses fewer messages per round than unsharded and
//     ends within 1e-9 relative utility of it (sync rounds are numerically
//     identical; the pin guards the claim).
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench_util.h"
#include "core/engine.h"
#include "model/serialization.h"
#include "runtime/coordinator.h"
#include "workloads/random.h"

using namespace lla;

namespace {

double NowSeconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// Best-of-`reps` timing of `fn`, in milliseconds.
template <typename Fn>
double BestMs(Fn&& fn, int reps = 3) {
  double best = 0.0;
  for (int rep = 0; rep < reps; ++rep) {
    const double start = NowSeconds();
    fn();
    const double elapsed = (NowSeconds() - start) * 1e3;
    if (rep == 0 || elapsed < best) best = elapsed;
  }
  return best;
}

struct SizeSpec {
  const char* name;
  std::size_t subtasks;
  int engine_iters;
  int rounds;  ///< sync rounds per coordinator mode
};

struct CoordinatorRun {
  double ms_per_round = 0.0;
  double messages_per_round = 0.0;
  double bytes_per_round = 0.0;
  double final_utility = 0.0;
};

CoordinatorRun RunCoordinator(const Workload& workload,
                              const LatencyModel& model, int num_shards,
                              int rounds) {
  runtime::CoordinatorConfig config;
  config.num_shards = num_shards;
  config.bus.base_delay_ms = 0.0;
  // The per-delivery serialize+deserialize self-check would dominate the
  // round timing at 10^5 subtasks; wire-format correctness is pinned by the
  // message and runtime tests instead.
  config.bus.verify_wire_format = false;
  config.record_history = false;
  runtime::Coordinator coordinator(workload, model, config);

  // Warm-up round: the first round's controller sends prime the agents'
  // latency inputs, so message counts are steady from round 2 on.
  coordinator.RunSyncRound();
  const net::BusStats before = coordinator.bus().stats();
  const double start = NowSeconds();
  for (int i = 0; i < rounds; ++i) coordinator.RunSyncRound();
  const double elapsed_ms = (NowSeconds() - start) * 1e3;
  const net::BusStats after = coordinator.bus().stats();

  CoordinatorRun run;
  run.ms_per_round = elapsed_ms / rounds;
  run.messages_per_round =
      static_cast<double>(after.sent - before.sent) / rounds;
  run.bytes_per_round =
      static_cast<double>(after.bytes - before.bytes) / rounds;
  run.final_utility = coordinator.CurrentUtility();
  return run;
}

}  // namespace

int main(int argc, char** argv) {
  const bool quick = bench::HasQuickFlag(argc, argv);

  bench::PrintHeader(
      "bench_scale — 10^3/10^4/10^5-subtask scale tier",
      "sharded resource agents + binary snapshot format (DESIGN.md §7.10)",
      "binary snapshot >= 5x smaller and >= 10x faster than text; sharded "
      "coordinator strictly fewer messages/round than per-resource agents");

  const int scale = quick ? 4 : 1;
  const std::vector<SizeSpec> sizes = {
      {"random_1k", 1000, 400 / scale, 40 / scale},
      {"random_10k", 10000, 200 / scale, 12 / scale},
      {"random_100k", 100000, 80 / scale, 8 / scale},
  };
  const int num_shards = 8;

  bool gate_size = false, gate_time = false, gate_lossless = false;
  bool gate_sharded = false;
  bench::JsonValue results = bench::JsonValue::Array();
  for (const SizeSpec& spec : sizes) {
    std::printf("\n--- %s (%zu subtasks requested) ---\n", spec.name,
                spec.subtasks);
    const double gen_start = NowSeconds();
    auto workload_or =
        MakeRandomWorkload(ScaledRandomWorkloadConfig(spec.subtasks, 11));
    if (!workload_or.ok()) {
      std::printf("workload error: %s\n", workload_or.error().c_str());
      return 1;
    }
    const double generate_ms = (NowSeconds() - gen_start) * 1e3;
    const Workload& workload = workload_or.value();
    LatencyModel model(workload);
    std::printf("%zu tasks, %zu subtasks, %zu resources, %zu paths "
                "(generated in %.0f ms)\n",
                workload.task_count(), workload.subtask_count(),
                workload.resource_count(), workload.path_count(),
                generate_ms);

    // Solve throughput: dense-mode engine (every subtask re-solved each
    // step), also the snapshot source — dense mode leaves the active-set
    // sections empty, so the text/binary comparison measures the price
    // state itself.
    LlaConfig engine_config = bench::PaperLlaConfig();
    engine_config.record_history = false;
    engine_config.active_set.enabled = false;
    LlaEngine engine(workload, model, engine_config);
    const double solve_start = NowSeconds();
    IterationStats last;
    for (int i = 0; i < spec.engine_iters; ++i) last = engine.Step();
    const double solve_seconds = NowSeconds() - solve_start;
    const double steps_per_sec = spec.engine_iters / solve_seconds;
    const double subtask_solves_per_sec =
        steps_per_sec * static_cast<double>(workload.subtask_count());
    std::printf("engine: %.1f steps/sec (%.2e subtask solves/sec), "
                "utility %.1f after %d iters%s\n",
                steps_per_sec, subtask_solves_per_sec, last.total_utility,
                spec.engine_iters, last.feasible ? ", feasible" : "");

    // Snapshot comparison, text v2 vs binary b1.
    const StateSnapshot snapshot = engine.Checkpoint();
    std::string text_bytes, binary_bytes;
    const double text_save_ms = BestMs([&] {
      text_bytes = SaveSnapshotToString(snapshot).value();
    });
    const double binary_save_ms = BestMs([&] {
      binary_bytes = SaveSnapshotBinaryToString(snapshot).value();
    });
    const double text_load_ms = BestMs([&] {
      if (!LoadSnapshotFromString(text_bytes).ok()) std::abort();
    });
    const double binary_load_ms = BestMs([&] {
      if (!LoadSnapshotBinaryFromString(binary_bytes).ok()) std::abort();
    });
    // Bitwise losslessness: load the binary image and re-serialize; the
    // bytes must be identical (same standard the text path pins).
    bool lossless = false;
    {
      auto reloaded = LoadSnapshotBinaryFromString(binary_bytes);
      if (reloaded.ok()) {
        auto again = SaveSnapshotBinaryToString(reloaded.value());
        lossless = again.ok() && again.value() == binary_bytes;
      }
    }
    const double size_ratio =
        static_cast<double>(text_bytes.size()) / binary_bytes.size();
    const double time_ratio = (text_save_ms + text_load_ms) /
                              (binary_save_ms + binary_load_ms);
    std::printf("snapshot: text %zu B (save %.2f ms, load %.2f ms), binary "
                "%zu B (save %.3f ms, load %.3f ms)\n",
                text_bytes.size(), text_save_ms, text_load_ms,
                binary_bytes.size(), binary_save_ms, binary_load_ms);
    std::printf("snapshot: binary %.1fx smaller, %.1fx faster, lossless: "
                "%s\n",
                size_ratio, time_ratio, lossless ? "yes" : "NO");

    // Coordinator round cost, per-resource agents vs sharded.
    const CoordinatorRun unsharded =
        RunCoordinator(workload, model, /*num_shards=*/0, spec.rounds);
    const CoordinatorRun sharded =
        RunCoordinator(workload, model, num_shards, spec.rounds);
    const double utility_rel_diff =
        std::fabs(sharded.final_utility - unsharded.final_utility) /
        std::max(1.0, std::fabs(unsharded.final_utility));
    std::printf("coordinator: unsharded %.0f msgs/round (%.2f ms), sharded "
                "[%d] %.0f msgs/round (%.2f ms), utility rel diff %.2e\n",
                unsharded.messages_per_round, unsharded.ms_per_round,
                num_shards, sharded.messages_per_round, sharded.ms_per_round,
                utility_rel_diff);

    if (spec.subtasks >= 100000) {
      gate_size = size_ratio >= 5.0;
      gate_time = time_ratio >= 10.0;
      gate_lossless = lossless;
      gate_sharded =
          sharded.messages_per_round < unsharded.messages_per_round &&
          utility_rel_diff <= 1e-9;
    }

    results.Push(
        bench::JsonValue::Object()
            .Add("workload", bench::JsonValue::String(spec.name))
            .Add("tasks", bench::JsonValue::Number(
                              static_cast<double>(workload.task_count())))
            .Add("subtasks",
                 bench::JsonValue::Number(
                     static_cast<double>(workload.subtask_count())))
            .Add("resources",
                 bench::JsonValue::Number(
                     static_cast<double>(workload.resource_count())))
            .Add("paths", bench::JsonValue::Number(
                              static_cast<double>(workload.path_count())))
            .Add("generate_ms", bench::JsonValue::Number(generate_ms))
            .Add("engine",
                 bench::JsonValue::Object()
                     .Add("iterations",
                          bench::JsonValue::Number(spec.engine_iters))
                     .Add("steps_per_sec",
                          bench::JsonValue::Number(steps_per_sec))
                     .Add("subtask_solves_per_sec",
                          bench::JsonValue::Number(subtask_solves_per_sec))
                     .Add("final_utility",
                          bench::JsonValue::Number(last.total_utility))
                     .Add("feasible", bench::JsonValue::Bool(last.feasible)))
            .Add("snapshot",
                 bench::JsonValue::Object()
                     .Add("text_bytes",
                          bench::JsonValue::Number(
                              static_cast<double>(text_bytes.size())))
                     .Add("binary_bytes",
                          bench::JsonValue::Number(
                              static_cast<double>(binary_bytes.size())))
                     .Add("text_save_ms",
                          bench::JsonValue::Number(text_save_ms))
                     .Add("text_load_ms",
                          bench::JsonValue::Number(text_load_ms))
                     .Add("binary_save_ms",
                          bench::JsonValue::Number(binary_save_ms))
                     .Add("binary_load_ms",
                          bench::JsonValue::Number(binary_load_ms))
                     .Add("size_ratio", bench::JsonValue::Number(size_ratio))
                     .Add("time_ratio", bench::JsonValue::Number(time_ratio))
                     .Add("lossless", bench::JsonValue::Bool(lossless)))
            .Add("coordinator",
                 bench::JsonValue::Object()
                     .Add("rounds", bench::JsonValue::Number(spec.rounds))
                     .Add("num_shards",
                          bench::JsonValue::Number(num_shards))
                     .Add("unsharded_messages_per_round",
                          bench::JsonValue::Number(
                              unsharded.messages_per_round))
                     .Add("sharded_messages_per_round",
                          bench::JsonValue::Number(
                              sharded.messages_per_round))
                     .Add("unsharded_bytes_per_round",
                          bench::JsonValue::Number(unsharded.bytes_per_round))
                     .Add("sharded_bytes_per_round",
                          bench::JsonValue::Number(sharded.bytes_per_round))
                     .Add("unsharded_ms_per_round",
                          bench::JsonValue::Number(unsharded.ms_per_round))
                     .Add("sharded_ms_per_round",
                          bench::JsonValue::Number(sharded.ms_per_round))
                     .Add("utility_rel_diff",
                          bench::JsonValue::Number(utility_rel_diff))));
  }

  const bool pass = gate_size && gate_time && gate_lossless && gate_sharded;
  std::printf("\ngates on random_100k: size >= 5x: %s  time >= 10x: %s  "
              "lossless: %s  sharded fewer msgs + same utility: %s\n",
              gate_size ? "PASS" : "FAIL", gate_time ? "PASS" : "FAIL",
              gate_lossless ? "PASS" : "FAIL",
              gate_sharded ? "PASS" : "FAIL");

  bench::JsonValue root =
      bench::BenchReportRoot("scale", "subtask_solves_per_sec", quick);
  root.Add("binary_5x_smaller", bench::JsonValue::Bool(gate_size));
  root.Add("binary_10x_faster", bench::JsonValue::Bool(gate_time));
  root.Add("binary_lossless", bench::JsonValue::Bool(gate_lossless));
  root.Add("sharded_fewer_messages", bench::JsonValue::Bool(gate_sharded));
  root.Add("results", std::move(results));
  if (bench::EmitBenchReport("BENCH_scale.json", root) != 0) return 1;
  return pass ? 0 : 1;
}
