// bench_scale — the 10^3 / 10^4 / 10^5 / 10^6-subtask scale tier.
//
// For each size of the random_100k family (ScaledRandomWorkloadConfig) this
// records into BENCH_scale.json:
//   * workload generation time and engine solve throughput (dense-mode
//     steps/sec, plus final utility/feasibility after a bounded run),
//   * snapshot size and serialize+deserialize time, text vs. binary b1,
//     plus the zero-copy mmap restore time (DESIGN.md §7.11),
//   * coordinator sync-round latency (mean and p50/p99), messages/round and
//     bytes/round for the classic one-agent-per-resource deployment vs. the
//     sharded one, and a round-threads sweep of the parallel coordinator
//     rounds with per-row effective_threads / clamped stamps.
//
// The random_1m tier runs sharded-only (the per-resource deployment would
// queue ~2M messages per round) and is skipped in --quick mode to keep the
// CI job bounded; its full-mode run demonstrates that a 10^6-subtask round
// completes without exhausting memory.
//
// Acceptance gates (evaluated on random_100k; failure exits 1):
//   * binary snapshot >= 5x smaller than text,
//   * binary serialize+deserialize >= 10x faster than text,
//   * binary round-trip bitwise-lossless,
//   * sharded coordinator uses fewer messages per round than unsharded and
//     ends within 1e-9 relative utility of it (sync rounds are numerically
//     identical; the pin guards the claim),
//   * the zero-copy wire path moves strictly fewer bytes per round than the
//     id-carrying PR 8 format would on the same workload (analytic),
//   * parallel rounds at 4 threads are >= 2x faster than serial delivery —
//     suppressed (not failed) when the host has < 4 hardware threads, where
//     every width clamps and the ratio is meaningless; the CI bench matrix
//     runs on >= 4-thread runners, so the gate is real there.
#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "core/engine.h"
#include "model/serialization.h"
#include "runtime/coordinator.h"
#include "workloads/random.h"

using namespace lla;

namespace {

double NowSeconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// Best-of-`reps` timing of `fn`, in milliseconds.
template <typename Fn>
double BestMs(Fn&& fn, int reps = 3) {
  double best = 0.0;
  for (int rep = 0; rep < reps; ++rep) {
    const double start = NowSeconds();
    fn();
    const double elapsed = (NowSeconds() - start) * 1e3;
    if (rep == 0 || elapsed < best) best = elapsed;
  }
  return best;
}

/// Nearest-rank percentile of a small sample (exact, not streamed — round
/// counts here are tens, not thousands).
double Percentile(std::vector<double> xs, double q) {
  if (xs.empty()) return 0.0;
  std::sort(xs.begin(), xs.end());
  const double rank = q * static_cast<double>(xs.size() - 1);
  const std::size_t idx = static_cast<std::size_t>(rank + 0.5);
  return xs[std::min(idx, xs.size() - 1)];
}

struct SizeSpec {
  const char* name;
  std::size_t subtasks;
  int engine_iters;
  int rounds;  ///< sync rounds per coordinator mode
};

struct CoordinatorRun {
  double ms_per_round = 0.0;
  double round_ms_p50 = 0.0;
  double round_ms_p99 = 0.0;
  double messages_per_round = 0.0;
  double bytes_per_round = 0.0;
  double final_utility = 0.0;
};

CoordinatorRun RunCoordinator(const Workload& workload,
                              const LatencyModel& model, int num_shards,
                              int rounds, int round_threads = 1) {
  runtime::CoordinatorConfig config;
  config.num_shards = num_shards;
  config.round_threads = round_threads;
  config.bus.base_delay_ms = 0.0;
  // The per-delivery serialize+deserialize self-check would dominate the
  // round timing at 10^5 subtasks; wire-format correctness is pinned by the
  // message and runtime tests instead.
  config.bus.verify_wire_format = false;
  config.record_history = false;
  runtime::Coordinator coordinator(workload, model, config);

  // Warm-up round: the first round's controller sends prime the agents'
  // latency inputs, so message counts are steady from round 2 on.
  coordinator.RunSyncRound();
  const net::BusStats before = coordinator.bus().stats();
  std::vector<double> round_ms;
  round_ms.reserve(static_cast<std::size_t>(rounds));
  const double start = NowSeconds();
  for (int i = 0; i < rounds; ++i) {
    const double round_start = NowSeconds();
    coordinator.RunSyncRound();
    round_ms.push_back((NowSeconds() - round_start) * 1e3);
  }
  const double elapsed_ms = (NowSeconds() - start) * 1e3;
  const net::BusStats after = coordinator.bus().stats();

  CoordinatorRun run;
  run.ms_per_round = elapsed_ms / rounds;
  run.round_ms_p50 = Percentile(round_ms, 0.50);
  run.round_ms_p99 = Percentile(round_ms, 0.99);
  run.messages_per_round =
      static_cast<double>(after.sent - before.sent) / rounds;
  run.bytes_per_round =
      static_cast<double>(after.bytes - before.bytes) / rounds;
  run.final_utility = coordinator.CurrentUtility();
  return run;
}

/// Bytes one sync round would move under the PR 8 id-carrying wire format
/// on this workload, from the message combinatorics alone: every round each
/// controller sent one ShardLatencyUpdate per used shard carrying
/// (resource u32, latency f64) pairs — 25 + 12*nsub bytes for nsub subtask
/// entries — and each shard answered every client with one ShardPriceUpdate
/// of (resource u32, mu f64, congested u8) triples — 25 + 13*nres bytes for
/// the client's nres used resources in the shard.  The zero-copy format's
/// measured bytes/round must come in strictly below this.
double OldWireBytesPerRound(const Workload& workload, int num_shards) {
  const std::size_t resources = workload.resource_count();
  const std::size_t shards =
      std::min<std::size_t>(static_cast<std::size_t>(num_shards),
                            std::max<std::size_t>(resources, 1));
  // Same contiguous partition the coordinator builds: shard s owns
  // [R*s/S, R*(s+1)/S).
  std::vector<std::uint32_t> shard_of(resources, 0);
  for (std::size_t s = 0; s < shards; ++s) {
    const std::size_t first = resources * s / shards;
    const std::size_t last = resources * (s + 1) / shards;
    for (std::size_t r = first; r < last; ++r) {
      shard_of[r] = static_cast<std::uint32_t>(s);
    }
  }
  double bytes = 0.0;
  std::vector<std::size_t> shard_subtasks(shards, 0);
  std::vector<std::size_t> shard_resources(shards, 0);
  std::vector<std::uint32_t> used;
  for (const TaskInfo& task : workload.tasks()) {
    std::fill(shard_subtasks.begin(), shard_subtasks.end(), 0);
    std::fill(shard_resources.begin(), shard_resources.end(), 0);
    used.clear();
    for (SubtaskId sid : task.subtasks) {
      const std::uint32_t r = workload.subtask(sid).resource.value();
      ++shard_subtasks[shard_of[r]];
      used.push_back(r);
    }
    std::sort(used.begin(), used.end());
    used.erase(std::unique(used.begin(), used.end()), used.end());
    for (std::uint32_t r : used) ++shard_resources[shard_of[r]];
    for (std::size_t s = 0; s < shards; ++s) {
      if (shard_subtasks[s] > 0) bytes += 25.0 + 12.0 * shard_subtasks[s];
      if (shard_resources[s] > 0) bytes += 25.0 + 13.0 * shard_resources[s];
    }
  }
  return bytes;
}

}  // namespace

int main(int argc, char** argv) {
  const bool quick = bench::HasQuickFlag(argc, argv);

  bench::PrintHeader(
      "bench_scale — 10^3/10^4/10^5/10^6-subtask scale tier",
      "sharded agents, zero-copy wire + parallel rounds (DESIGN.md §7.10-11)",
      "binary snapshot >= 5x smaller and >= 10x faster than text; sharded "
      "coordinator fewer messages and strictly fewer bytes per round than "
      "the PR 8 wire format; 4-thread rounds >= 2x serial on >= 4-core "
      "hosts");

  const int scale = quick ? 4 : 1;
  const std::vector<SizeSpec> sizes = {
      {"random_1k", 1000, 400 / scale, 40 / scale},
      {"random_10k", 10000, 200 / scale, 12 / scale},
      {"random_100k", 100000, 80 / scale, 8 / scale},
      {"random_1m", 1000000, 4, 3},
  };
  const int num_shards = 8;
  const std::vector<int> thread_sweep = {2, 4};
  const unsigned hardware = std::max(1u, std::thread::hardware_concurrency());

  bool gate_size = false, gate_time = false, gate_lossless = false;
  bool gate_sharded = false, gate_bytes = false;
  bool gate_speedup = false, speedup_suppressed = false;
  bench::JsonValue results = bench::JsonValue::Array();
  for (const SizeSpec& spec : sizes) {
    if (quick && spec.subtasks >= 1000000) {
      std::printf("\n--- %s skipped in --quick mode ---\n", spec.name);
      continue;
    }
    std::printf("\n--- %s (%zu subtasks requested) ---\n", spec.name,
                spec.subtasks);
    const double gen_start = NowSeconds();
    auto workload_or =
        MakeRandomWorkload(ScaledRandomWorkloadConfig(spec.subtasks, 11));
    if (!workload_or.ok()) {
      std::printf("workload error: %s\n", workload_or.error().c_str());
      return 1;
    }
    const double generate_ms = (NowSeconds() - gen_start) * 1e3;
    const Workload& workload = workload_or.value();
    LatencyModel model(workload);
    std::printf("%zu tasks, %zu subtasks, %zu resources, %zu paths "
                "(generated in %.0f ms)\n",
                workload.task_count(), workload.subtask_count(),
                workload.resource_count(), workload.path_count(),
                generate_ms);

    // Solve throughput: dense-mode engine (every subtask re-solved each
    // step), also the snapshot source — dense mode leaves the active-set
    // sections empty, so the text/binary comparison measures the price
    // state itself.
    LlaConfig engine_config = bench::PaperLlaConfig();
    engine_config.record_history = false;
    engine_config.active_set.enabled = false;
    LlaEngine engine(workload, model, engine_config);
    const double solve_start = NowSeconds();
    IterationStats last;
    for (int i = 0; i < spec.engine_iters; ++i) last = engine.Step();
    const double solve_seconds = NowSeconds() - solve_start;
    const double steps_per_sec = spec.engine_iters / solve_seconds;
    const double subtask_solves_per_sec =
        steps_per_sec * static_cast<double>(workload.subtask_count());
    std::printf("engine: %.1f steps/sec (%.2e subtask solves/sec), "
                "utility %.1f after %d iters%s\n",
                steps_per_sec, subtask_solves_per_sec, last.total_utility,
                spec.engine_iters, last.feasible ? ", feasible" : "");

    // Snapshot comparison, text v2 vs binary b1.
    const StateSnapshot snapshot = engine.Checkpoint();
    std::string text_bytes, binary_bytes;
    const double text_save_ms = BestMs([&] {
      text_bytes = SaveSnapshotToString(snapshot).value();
    });
    const double binary_save_ms = BestMs([&] {
      binary_bytes = SaveSnapshotBinaryToString(snapshot).value();
    });
    const double text_load_ms = BestMs([&] {
      if (!LoadSnapshotFromString(text_bytes).ok()) std::abort();
    });
    const double binary_load_ms = BestMs([&] {
      if (!LoadSnapshotBinaryFromString(binary_bytes).ok()) std::abort();
    });
    // Zero-copy restore (DESIGN.md §7.11): mmap the file, parse the
    // non-owning view, materialize once — the path `lla solve --restore`
    // takes for binary snapshots.
    const std::string mmap_path = "bench_scale_snapshot.tmp";
    double binary_mmap_load_ms = 0.0;
    {
      const Status saved = SaveSnapshotBinaryToFile(snapshot, mmap_path);
      if (!saved.ok()) std::abort();
      binary_mmap_load_ms = BestMs([&] {
        auto mapped = MappedSnapshotFile::Open(mmap_path);
        if (!mapped.ok()) std::abort();
        auto view =
            ParseSnapshotBinary(mapped.value().data(), mapped.value().size());
        if (!view.ok()) std::abort();
        const StateSnapshot materialized = MaterializeSnapshot(view.value());
        if (materialized.resource_count != snapshot.resource_count) {
          std::abort();
        }
      });
      std::remove(mmap_path.c_str());
    }
    // Bitwise losslessness: load the binary image and re-serialize; the
    // bytes must be identical (same standard the text path pins).
    bool lossless = false;
    {
      auto reloaded = LoadSnapshotBinaryFromString(binary_bytes);
      if (reloaded.ok()) {
        auto again = SaveSnapshotBinaryToString(reloaded.value());
        lossless = again.ok() && again.value() == binary_bytes;
      }
    }
    const double size_ratio =
        static_cast<double>(text_bytes.size()) / binary_bytes.size();
    const double time_ratio = (text_save_ms + text_load_ms) /
                              (binary_save_ms + binary_load_ms);
    std::printf("snapshot: text %zu B (save %.2f ms, load %.2f ms), binary "
                "%zu B (save %.3f ms, load %.3f ms, mmap load %.3f ms)\n",
                text_bytes.size(), text_save_ms, text_load_ms,
                binary_bytes.size(), binary_save_ms, binary_load_ms,
                binary_mmap_load_ms);
    std::printf("snapshot: binary %.1fx smaller, %.1fx faster, lossless: "
                "%s\n",
                size_ratio, time_ratio, lossless ? "yes" : "NO");

    // Coordinator round cost, per-resource agents vs sharded.  The 10^6
    // tier runs sharded-only: the per-resource deployment would enqueue
    // ~2 messages per subtask per round.
    const bool run_unsharded = spec.subtasks < 1000000;
    CoordinatorRun unsharded;
    if (run_unsharded) {
      unsharded =
          RunCoordinator(workload, model, /*num_shards=*/0, spec.rounds);
    }
    const CoordinatorRun sharded =
        RunCoordinator(workload, model, num_shards, spec.rounds);
    const double utility_rel_diff =
        run_unsharded
            ? std::fabs(sharded.final_utility - unsharded.final_utility) /
                  std::max(1.0, std::fabs(unsharded.final_utility))
            : 0.0;
    const double old_wire_bytes = OldWireBytesPerRound(workload, num_shards);
    if (run_unsharded) {
      std::printf("coordinator: unsharded %.0f msgs/round (%.2f ms), sharded "
                  "[%d] %.0f msgs/round (%.2f ms), utility rel diff %.2e\n",
                  unsharded.messages_per_round, unsharded.ms_per_round,
                  num_shards, sharded.messages_per_round,
                  sharded.ms_per_round, utility_rel_diff);
    } else {
      std::printf("coordinator: sharded [%d] %.0f msgs/round (%.2f ms), "
                  "unsharded skipped at this size\n",
                  num_shards, sharded.messages_per_round,
                  sharded.ms_per_round);
    }
    std::printf("coordinator: sharded round p50 %.2f ms, p99 %.2f ms; "
                "%.0f B/round (PR 8 wire format would use %.0f B/round)\n",
                sharded.round_ms_p50, sharded.round_ms_p99,
                sharded.bytes_per_round, old_wire_bytes);

    // Parallel round-threads sweep (DESIGN.md §7.11).  The fixed point is
    // bit-identical at every width (parallel_round_property_test pins it);
    // this measures wall-clock only.  Widths beyond the host's hardware
    // threads are stamped clamped and carry no speedup column — a 1-core
    // host would "measure" pure oversubscription noise.
    bench::JsonValue parallel_rows = bench::JsonValue::Array();
    double speedup_at_4 = 0.0;
    bool clamped_at_4 = true;
    for (int threads : thread_sweep) {
      const int effective =
          std::min(threads, static_cast<int>(hardware));
      const bool clamped = effective < threads;
      const CoordinatorRun run =
          RunCoordinator(workload, model, num_shards, spec.rounds, threads);
      bench::JsonValue row =
          bench::JsonValue::Object()
              .Add("round_threads", bench::JsonValue::Number(threads))
              .Add("effective_threads", bench::JsonValue::Number(effective))
              .Add("clamped", bench::JsonValue::Bool(clamped))
              .Add("ms_per_round", bench::JsonValue::Number(run.ms_per_round))
              .Add("round_ms_p50",
                   bench::JsonValue::Number(run.round_ms_p50))
              .Add("round_ms_p99",
                   bench::JsonValue::Number(run.round_ms_p99));
      if (!clamped) {
        const double speedup = sharded.ms_per_round / run.ms_per_round;
        row.Add("speedup_vs_serial", bench::JsonValue::Number(speedup));
        std::printf("parallel rounds: %d threads %.2f ms/round "
                    "(p50 %.2f, p99 %.2f), %.2fx vs serial\n",
                    threads, run.ms_per_round, run.round_ms_p50,
                    run.round_ms_p99, speedup);
        if (threads == 4) {
          speedup_at_4 = speedup;
          clamped_at_4 = false;
        }
      } else {
        std::printf("parallel rounds: %d threads clamped to %d on this host "
                    "(%.2f ms/round, speedup suppressed)\n",
                    threads, effective, run.ms_per_round);
      }
      parallel_rows.Push(std::move(row));
    }

    if (std::strcmp(spec.name, "random_100k") == 0) {
      gate_size = size_ratio >= 5.0;
      gate_time = time_ratio >= 10.0;
      gate_lossless = lossless;
      gate_sharded =
          sharded.messages_per_round < unsharded.messages_per_round &&
          utility_rel_diff <= 1e-9;
      gate_bytes = sharded.bytes_per_round < old_wire_bytes;
      if (clamped_at_4) {
        // < 4 hardware threads: the ratio is oversubscription noise, not a
        // speedup measurement.  Pass the gate as "suppressed" — the CI
        // bench matrix (>= 4-thread runners) evaluates it for real.
        gate_speedup = true;
        speedup_suppressed = true;
      } else {
        gate_speedup = speedup_at_4 >= 2.0;
        speedup_suppressed = false;
      }
    }

    bench::JsonValue coordinator_json =
        bench::JsonValue::Object()
            .Add("rounds", bench::JsonValue::Number(spec.rounds))
            .Add("num_shards", bench::JsonValue::Number(num_shards))
            .Add("unsharded_skipped",
                 bench::JsonValue::Bool(!run_unsharded))
            .Add("sharded_messages_per_round",
                 bench::JsonValue::Number(sharded.messages_per_round))
            .Add("sharded_bytes_per_round",
                 bench::JsonValue::Number(sharded.bytes_per_round))
            .Add("old_wire_bytes_per_round",
                 bench::JsonValue::Number(old_wire_bytes))
            .Add("sharded_ms_per_round",
                 bench::JsonValue::Number(sharded.ms_per_round))
            .Add("sharded_round_ms_p50",
                 bench::JsonValue::Number(sharded.round_ms_p50))
            .Add("sharded_round_ms_p99",
                 bench::JsonValue::Number(sharded.round_ms_p99))
            .Add("parallel", std::move(parallel_rows));
    if (run_unsharded) {
      coordinator_json
          .Add("unsharded_messages_per_round",
               bench::JsonValue::Number(unsharded.messages_per_round))
          .Add("unsharded_bytes_per_round",
               bench::JsonValue::Number(unsharded.bytes_per_round))
          .Add("unsharded_ms_per_round",
               bench::JsonValue::Number(unsharded.ms_per_round))
          .Add("unsharded_round_ms_p50",
               bench::JsonValue::Number(unsharded.round_ms_p50))
          .Add("unsharded_round_ms_p99",
               bench::JsonValue::Number(unsharded.round_ms_p99))
          .Add("utility_rel_diff",
               bench::JsonValue::Number(utility_rel_diff));
    }

    results.Push(
        bench::JsonValue::Object()
            .Add("workload", bench::JsonValue::String(spec.name))
            .Add("tasks", bench::JsonValue::Number(
                              static_cast<double>(workload.task_count())))
            .Add("subtasks",
                 bench::JsonValue::Number(
                     static_cast<double>(workload.subtask_count())))
            .Add("resources",
                 bench::JsonValue::Number(
                     static_cast<double>(workload.resource_count())))
            .Add("paths", bench::JsonValue::Number(
                              static_cast<double>(workload.path_count())))
            .Add("generate_ms", bench::JsonValue::Number(generate_ms))
            .Add("engine",
                 bench::JsonValue::Object()
                     .Add("iterations",
                          bench::JsonValue::Number(spec.engine_iters))
                     .Add("steps_per_sec",
                          bench::JsonValue::Number(steps_per_sec))
                     .Add("subtask_solves_per_sec",
                          bench::JsonValue::Number(subtask_solves_per_sec))
                     .Add("final_utility",
                          bench::JsonValue::Number(last.total_utility))
                     .Add("feasible", bench::JsonValue::Bool(last.feasible)))
            .Add("snapshot",
                 bench::JsonValue::Object()
                     .Add("text_bytes",
                          bench::JsonValue::Number(
                              static_cast<double>(text_bytes.size())))
                     .Add("binary_bytes",
                          bench::JsonValue::Number(
                              static_cast<double>(binary_bytes.size())))
                     .Add("text_save_ms",
                          bench::JsonValue::Number(text_save_ms))
                     .Add("text_load_ms",
                          bench::JsonValue::Number(text_load_ms))
                     .Add("binary_save_ms",
                          bench::JsonValue::Number(binary_save_ms))
                     .Add("binary_load_ms",
                          bench::JsonValue::Number(binary_load_ms))
                     .Add("binary_mmap_load_ms",
                          bench::JsonValue::Number(binary_mmap_load_ms))
                     .Add("size_ratio", bench::JsonValue::Number(size_ratio))
                     .Add("time_ratio", bench::JsonValue::Number(time_ratio))
                     .Add("lossless", bench::JsonValue::Bool(lossless)))
            .Add("coordinator", std::move(coordinator_json)));
  }

  const bool pass = gate_size && gate_time && gate_lossless &&
                    gate_sharded && gate_bytes && gate_speedup;
  std::printf("\ngates on random_100k: size >= 5x: %s  time >= 10x: %s  "
              "lossless: %s  sharded fewer msgs + same utility: %s  "
              "fewer bytes than PR 8 wire: %s  parallel >= 2x @4t: %s\n",
              gate_size ? "PASS" : "FAIL", gate_time ? "PASS" : "FAIL",
              gate_lossless ? "PASS" : "FAIL",
              gate_sharded ? "PASS" : "FAIL", gate_bytes ? "PASS" : "FAIL",
              speedup_suppressed ? "SUPPRESSED (host < 4 hw threads)"
                                 : (gate_speedup ? "PASS" : "FAIL"));

  bench::JsonValue root =
      bench::BenchReportRoot("scale", "subtask_solves_per_sec", quick);
  root.Add("hardware_concurrency",
           bench::JsonValue::Number(static_cast<double>(hardware)));
  root.Add("binary_5x_smaller", bench::JsonValue::Bool(gate_size));
  root.Add("binary_10x_faster", bench::JsonValue::Bool(gate_time));
  root.Add("binary_lossless", bench::JsonValue::Bool(gate_lossless));
  root.Add("sharded_fewer_messages", bench::JsonValue::Bool(gate_sharded));
  root.Add("fewer_bytes_than_old_wire", bench::JsonValue::Bool(gate_bytes));
  root.Add("parallel_2x_speedup", bench::JsonValue::Bool(gate_speedup));
  root.Add("parallel_gate_suppressed",
           bench::JsonValue::Bool(speedup_suppressed));
  root.Add("results", std::move(results));
  if (bench::EmitBenchReport("BENCH_scale.json", root) != 0) return 1;
  return pass ? 0 : 1;
}
