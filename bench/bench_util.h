// Shared helpers for the paper-reproduction benches: consistent headers and
// series printing so every bench emits a self-describing report.
#pragma once

#include <cstdio>
#include <string>
#include <vector>

#include "core/engine.h"
#include "model/workload.h"

namespace lla::bench {

inline void PrintHeader(const std::string& title, const std::string& paper_ref,
                        const std::string& expectation) {
  std::printf("==============================================================="
              "=================\n");
  std::printf("%s\n", title.c_str());
  std::printf("Paper artifact: %s\n", paper_ref.c_str());
  std::printf("Expected shape: %s\n", expectation.c_str());
  std::printf("==============================================================="
              "=================\n");
}

/// Prints a utility-vs-iteration series, sampled so long runs stay readable.
inline void PrintUtilitySeries(const std::string& label,
                               const std::vector<IterationStats>& history,
                               int max_points = 25) {
  const int n = static_cast<int>(history.size());
  const int stride = n <= max_points ? 1 : n / max_points;
  std::printf("%-24s iter:utility  ", label.c_str());
  for (int i = 0; i < n; i += stride) {
    std::printf("%d:%.1f ", history[i].iteration, history[i].total_utility);
  }
  if (n > 0 && (n - 1) % stride != 0) {
    std::printf("%d:%.1f", history[n - 1].iteration,
                history[n - 1].total_utility);
  }
  std::printf("\n");
}

/// First iteration after which utility stays within `band` (relative) of the
/// final value; -1 if it never settles.
inline int SettleIteration(const std::vector<IterationStats>& history,
                           double band = 0.01) {
  if (history.empty()) return -1;
  const double final_utility = history.back().total_utility;
  const double tolerance =
      band * std::max(1.0, std::abs(final_utility));
  int settle = -1;
  for (int i = static_cast<int>(history.size()) - 1; i >= 0; --i) {
    if (std::abs(history[i].total_utility - final_utility) > tolerance) {
      settle = history[i].iteration + 1;
      break;
    }
  }
  return settle == -1 ? 1 : settle;
}

/// The paper-calibrated engine configuration used by all benches.
inline LlaConfig PaperLlaConfig() {
  LlaConfig config;
  config.step_policy = StepPolicyKind::kAdaptive;
  config.gamma0 = 4.0;
  config.adaptive_max_multiplier = 8.0;
  return config;
}

}  // namespace lla::bench
