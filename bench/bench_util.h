// Shared helpers for the paper-reproduction benches: consistent headers and
// series printing so every bench emits a self-describing report, plus a
// minimal JSON value type so benches can also write machine-readable
// BENCH_*.json artifacts for the perf trajectory.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <ctime>
#include <string>
#include <utility>
#include <vector>

#include "core/engine.h"
#include "model/workload.h"

namespace lla::bench {

inline void PrintHeader(const std::string& title, const std::string& paper_ref,
                        const std::string& expectation) {
  std::printf("==============================================================="
              "=================\n");
  std::printf("%s\n", title.c_str());
  std::printf("Paper artifact: %s\n", paper_ref.c_str());
  std::printf("Expected shape: %s\n", expectation.c_str());
  std::printf("==============================================================="
              "=================\n");
}

/// Prints a utility-vs-iteration series, sampled so long runs stay readable.
inline void PrintUtilitySeries(const std::string& label,
                               const std::vector<IterationStats>& history,
                               int max_points = 25) {
  const int n = static_cast<int>(history.size());
  const int stride = n <= max_points ? 1 : n / max_points;
  std::printf("%-24s iter:utility  ", label.c_str());
  for (int i = 0; i < n; i += stride) {
    std::printf("%d:%.1f ", history[i].iteration, history[i].total_utility);
  }
  if (n > 0 && (n - 1) % stride != 0) {
    std::printf("%d:%.1f", history[n - 1].iteration,
                history[n - 1].total_utility);
  }
  std::printf("\n");
}

/// First iteration after which utility stays within `band` (relative) of the
/// final value; -1 if it never settles.
inline int SettleIteration(const std::vector<IterationStats>& history,
                           double band = 0.01) {
  if (history.empty()) return -1;
  const double final_utility = history.back().total_utility;
  const double tolerance =
      band * std::max(1.0, std::abs(final_utility));
  int settle = -1;
  for (int i = static_cast<int>(history.size()) - 1; i >= 0; --i) {
    if (std::abs(history[i].total_utility - final_utility) > tolerance) {
      settle = history[i].iteration + 1;
      break;
    }
  }
  return settle == -1 ? 1 : settle;
}

/// The paper-calibrated engine configuration used by all benches.
inline LlaConfig PaperLlaConfig() {
  LlaConfig config;
  config.step_policy = StepPolicyKind::kAdaptive;
  config.gamma0 = 4.0;
  config.adaptive_max_multiplier = 8.0;
  return config;
}

/// Minimal JSON value (number / string / bool / array / object) for the
/// BENCH_*.json artifacts.  Build with the static factories and the chaining
/// Add/Push helpers, then serialize with WriteJson.
struct JsonValue {
  enum class Kind { kNumber, kString, kBool, kArray, kObject };
  Kind kind = Kind::kNumber;
  double number = 0.0;
  std::string string;
  bool boolean = false;
  std::vector<JsonValue> items;                          ///< kArray
  std::vector<std::pair<std::string, JsonValue>> fields; ///< kObject

  static JsonValue Number(double value) {
    JsonValue v;
    v.kind = Kind::kNumber;
    v.number = value;
    return v;
  }
  static JsonValue String(std::string value) {
    JsonValue v;
    v.kind = Kind::kString;
    v.string = std::move(value);
    return v;
  }
  static JsonValue Bool(bool value) {
    JsonValue v;
    v.kind = Kind::kBool;
    v.boolean = value;
    return v;
  }
  static JsonValue Array() {
    JsonValue v;
    v.kind = Kind::kArray;
    return v;
  }
  static JsonValue Object() {
    JsonValue v;
    v.kind = Kind::kObject;
    return v;
  }

  JsonValue& Add(std::string key, JsonValue value) {
    fields.emplace_back(std::move(key), std::move(value));
    return *this;
  }
  JsonValue& Push(JsonValue value) {
    items.push_back(std::move(value));
    return *this;
  }
};

inline void WriteJsonValue(std::FILE* file, const JsonValue& value,
                           int indent) {
  const auto pad = [&](int depth) {
    for (int i = 0; i < depth; ++i) std::fputs("  ", file);
  };
  switch (value.kind) {
    case JsonValue::Kind::kNumber:
      std::fprintf(file, "%.17g", value.number);
      break;
    case JsonValue::Kind::kBool:
      std::fputs(value.boolean ? "true" : "false", file);
      break;
    case JsonValue::Kind::kString:
      std::fputc('"', file);
      for (char c : value.string) {
        if (c == '"' || c == '\\') std::fputc('\\', file);
        if (static_cast<unsigned char>(c) < 0x20) {
          std::fprintf(file, "\\u%04x", c);
        } else {
          std::fputc(c, file);
        }
      }
      std::fputc('"', file);
      break;
    case JsonValue::Kind::kArray:
      std::fputc('[', file);
      for (std::size_t i = 0; i < value.items.size(); ++i) {
        std::fputs(i == 0 ? "\n" : ",\n", file);
        pad(indent + 1);
        WriteJsonValue(file, value.items[i], indent + 1);
      }
      if (!value.items.empty()) {
        std::fputc('\n', file);
        pad(indent);
      }
      std::fputc(']', file);
      break;
    case JsonValue::Kind::kObject:
      std::fputc('{', file);
      for (std::size_t i = 0; i < value.fields.size(); ++i) {
        std::fputs(i == 0 ? "\n" : ",\n", file);
        pad(indent + 1);
        std::fprintf(file, "\"%s\": ", value.fields[i].first.c_str());
        WriteJsonValue(file, value.fields[i].second, indent + 1);
      }
      if (!value.fields.empty()) {
        std::fputc('\n', file);
        pad(indent);
      }
      std::fputc('}', file);
      break;
  }
}

/// The commit SHA the bench binary is reporting for: GITHUB_SHA (CI) or
/// LLA_COMMIT (manual override), falling back to `git rev-parse HEAD`, then
/// "unknown" outside a checkout.
inline std::string CommitSha() {
  for (const char* var : {"GITHUB_SHA", "LLA_COMMIT"}) {
    const char* value = std::getenv(var);
    if (value != nullptr && value[0] != '\0') return value;
  }
  std::string sha;
  if (std::FILE* pipe = ::popen("git rev-parse HEAD 2>/dev/null", "r")) {
    char buffer[64];
    if (std::fgets(buffer, sizeof(buffer), pipe) != nullptr) sha = buffer;
    ::pclose(pipe);
  }
  while (!sha.empty() && (sha.back() == '\n' || sha.back() == '\r')) {
    sha.pop_back();
  }
  return sha.empty() ? "unknown" : sha;
}

/// Stamps provenance into a BENCH_*.json root object: the commit SHA and
/// the generation time (ISO 8601 UTC), so archived artifacts from the perf
/// trajectory remain attributable to the code that produced them.
inline void StampMeta(JsonValue* root) {
  root->Add("commit", JsonValue::String(CommitSha()));
  std::time_t now = std::time(nullptr);
  std::tm utc{};
  gmtime_r(&now, &utc);
  char stamp[32];
  std::strftime(stamp, sizeof(stamp), "%Y-%m-%dT%H:%M:%SZ", &utc);
  root->Add("generated_at", JsonValue::String(stamp));
}

/// Writes `value` to `path` (pretty-printed, trailing newline).  Returns
/// false when the file cannot be opened.
inline bool WriteJson(const std::string& path, const JsonValue& value) {
  std::FILE* file = std::fopen(path.c_str(), "w");
  if (file == nullptr) return false;
  WriteJsonValue(file, value, 0);
  std::fputc('\n', file);
  std::fclose(file);
  return true;
}

/// The standard BENCH_*.json root shared by the JSON-emitting benches: bench
/// name, measurement unit, quick flag, plus the provenance stamp.  Benches
/// append their gate flags and result sections to the returned object.
inline JsonValue BenchReportRoot(const std::string& bench,
                                 const std::string& unit, bool quick) {
  JsonValue root = JsonValue::Object();
  root.Add("bench", JsonValue::String(bench));
  root.Add("unit", JsonValue::String(unit));
  root.Add("quick", JsonValue::Bool(quick));
  StampMeta(&root);
  return root;
}

/// Writes the finished report and prints the outcome.  Returns the exit-code
/// contribution (0 ok, 1 write failure) for the bench's main to combine with
/// its gate status.
inline int EmitBenchReport(const std::string& path, const JsonValue& root) {
  if (WriteJson(path, root)) {
    std::printf("wrote %s\n", path.c_str());
    return 0;
  }
  std::printf("failed to write %s\n", path.c_str());
  return 1;
}

/// Shared --quick detection for bench mains.
inline bool HasQuickFlag(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) return true;
  }
  return false;
}

}  // namespace lla::bench
