// Measures crash-restart recovery cost (DESIGN.md §7.7): how many protocol
// rounds the optimizer needs to get back to the converged operating point
// after a node loses its dual state, comparing
//   * a COLD restart — total state loss, re-convergence from zero prices
//     (distributed: plus the peer repair exchange) — against
//   * a CHECKPOINTED restart — the dual state is restored from the last
//     periodic StateSnapshot, so re-convergence only has to replay the
//     trajectory from the snapshot's iteration (bounded staleness).
//
// Two layers:
//   1. Engine: a twin run checkpoints every kCheckpointInterval iterations
//      through the durable text serialization; at convergence the engine
//      "crashes" and the last snapshot restores into a fresh engine.
//      Because Restore resumes the dense trajectory bit-identically, the
//      restarted run re-converges in exactly (staleness) rounds versus the
//      full cold iteration count.
//   2. Distributed runtime: a resource agent of the async deployment is
//      crashed and restarted cold (repair exchange, incarnation-gated stale
//      rejection) vs. from a CheckpointResource snapshot; recovery is
//      counted in monitor periods until the agent's price is back at its
//      pre-crash value.
//
// Acceptance bar: the checkpointed restart re-converges in STRICTLY fewer
// rounds than the cold restart, in every scenario of both layers.
//
// Writes BENCH_recovery.json for the perf trajectory.
#include <chrono>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench_util.h"
#include "core/engine.h"
#include "model/serialization.h"
#include "obs/metrics.h"
#include "runtime/coordinator.h"
#include "workloads/paper.h"
#include "workloads/random.h"

using namespace lla;

namespace {

constexpr int kMaxIterations = 12000;
/// The engine layer's periodic checkpoint cadence — the bounded staleness a
/// restarted node can lose is at most this many rounds of progress.
constexpr int kCheckpointInterval = 50;

/// The proven converging configuration (same as bench_convergence): the
/// recovery comparison needs runs that actually terminate at the criterion.
LlaConfig ConvergingConfig() {
  LlaConfig config;
  config.step_policy = StepPolicyKind::kAdaptive;
  config.gamma0 = 3.0;
  config.record_history = false;
  config.active_set.enabled = true;
  return config;
}

struct RestartRun {
  bool converged = false;
  int rounds = 0;  ///< iterations executed AFTER the restart
  double wall_ms = 0.0;
  double final_utility = 0.0;
};

void PrintRestart(const char* label, const RestartRun& run) {
  std::printf("  %-26s %6d rounds  %8.2f ms  utility %.6f%s\n", label,
              run.rounds, run.wall_ms, run.final_utility,
              run.converged ? "" : "  [DID NOT CONVERGE]");
}

bench::JsonValue RestartJson(const RestartRun& run) {
  return bench::JsonValue::Object()
      .Add("converged", bench::JsonValue::Bool(run.converged))
      .Add("rounds", bench::JsonValue::Number(static_cast<double>(run.rounds)))
      .Add("wall_ms", bench::JsonValue::Number(run.wall_ms))
      .Add("final_utility", bench::JsonValue::Number(run.final_utility));
}

/// Engine layer: cold re-convergence vs. restore-from-last-checkpoint.
/// Returns false when the scenario misses the acceptance bar.
bool RunEngineScenario(const std::string& name, const Workload& workload,
                       bench::JsonValue* results) {
  std::printf("\n%s: %zu tasks, %zu subtasks, %zu resources\n", name.c_str(),
              workload.task_count(), workload.subtask_count(),
              workload.resource_count());
  LatencyModel model(workload);

  // Cold restart: the node lost everything and no snapshot exists, so the
  // whole convergence is paid again.
  RestartRun cold;
  {
    LlaEngine engine(workload, model, ConvergingConfig());
    const auto start = std::chrono::steady_clock::now();
    const RunResult result = engine.Run(kMaxIterations);
    const auto stop = std::chrono::steady_clock::now();
    cold.converged = result.converged;
    cold.rounds = result.iterations;
    cold.wall_ms =
        std::chrono::duration<double, std::milli>(stop - start).count();
    cold.final_utility = result.final_utility;
  }
  PrintRestart("cold restart", cold);

  // Checkpoint discipline: a twin run snapshots every kCheckpointInterval
  // iterations through the durable text format (what a real deployment
  // would fsync), then crashes at convergence and restores the last one.
  LlaEngine primary(workload, model, ConvergingConfig());
  StateSnapshot last_checkpoint = primary.Checkpoint();
  while (!primary.Converged() && primary.iteration() < kMaxIterations) {
    primary.Step();
    if (primary.iteration() % kCheckpointInterval == 0) {
      last_checkpoint = primary.Checkpoint();
    }
  }
  const int crash_iteration = primary.iteration();
  const int staleness = crash_iteration - last_checkpoint.iteration;

  auto text = SaveSnapshotToString(last_checkpoint);
  if (!text.ok()) {
    std::printf("  snapshot serialization failed: %s\n", text.error().c_str());
    return false;
  }
  const std::size_t snapshot_bytes = text.value().size();

  RestartRun checkpointed;
  {
    const auto start = std::chrono::steady_clock::now();
    auto loaded = LoadSnapshotFromString(text.value());
    if (!loaded.ok()) {
      std::printf("  snapshot load failed: %s\n", loaded.error().c_str());
      return false;
    }
    LlaEngine restored(workload, model, ConvergingConfig());
    const Status status = restored.Restore(loaded.value());
    if (!status.ok()) {
      std::printf("  restore failed: %s\n", status.error().c_str());
      return false;
    }
    const RunResult result = restored.Run(kMaxIterations);
    const auto stop = std::chrono::steady_clock::now();
    checkpointed.converged = result.converged;
    checkpointed.rounds = result.iterations - last_checkpoint.iteration;
    checkpointed.wall_ms =
        std::chrono::duration<double, std::milli>(stop - start).count();
    checkpointed.final_utility = result.final_utility;
  }
  PrintRestart("checkpointed restart", checkpointed);
  std::printf("  checkpoint every %d rounds, staleness at crash %d rounds, "
              "snapshot %zu bytes\n",
              kCheckpointInterval, staleness, snapshot_bytes);

  // Restore resumes bit-identically, so the restarted run must land on the
  // exact utility of the uninterrupted one, not just nearby.
  const bool bit_identical =
      checkpointed.final_utility == cold.final_utility;
  if (!bit_identical) {
    std::printf("  MISMATCH: restored run diverged from cold trajectory "
                "(utility %.17g vs %.17g)\n",
                checkpointed.final_utility, cold.final_utility);
  }
  const bool pass = cold.converged && checkpointed.converged &&
                    bit_identical && checkpointed.rounds < cold.rounds;
  std::printf("  checkpointed %d < cold %d rounds: %s\n", checkpointed.rounds,
              cold.rounds, pass ? "yes" : "NO");

  results->Push(
      bench::JsonValue::Object()
          .Add("workload", bench::JsonValue::String(name))
          .Add("checkpoint_interval",
               bench::JsonValue::Number(kCheckpointInterval))
          .Add("staleness_rounds",
               bench::JsonValue::Number(static_cast<double>(staleness)))
          .Add("snapshot_bytes",
               bench::JsonValue::Number(static_cast<double>(snapshot_bytes)))
          .Add("bit_identical_resume", bench::JsonValue::Bool(bit_identical))
          .Add("cold", RestartJson(cold))
          .Add("checkpointed", RestartJson(checkpointed)));
  return pass;
}

/// Distributed layer configuration, mirroring the crash-restart tests: a
/// grace window covering the repair round trip under heavy jitter, so the
/// cold restart's repair exchange (and the stale rejection it triggers) is
/// actually exercised.
runtime::CoordinatorConfig AsyncRecoveryConfig(obs::MetricRegistry* metrics) {
  runtime::CoordinatorConfig config;
  config.step.gamma0 = 3.0;
  config.step.repair_grace_ticks = 12;
  config.bus.base_delay_ms = 1.0;
  config.bus.jitter_ms = 60.0;
  config.bus.seed = 13;
  config.metrics = metrics;
  return config;
}

struct DistributedRun {
  bool recovered = false;
  int monitor_rounds = 0;  ///< monitor periods until the price is back
  double ms_to_recovery = 0.0;
  std::uint64_t repair_rounds = 0;
  std::uint64_t stale_rejected = 0;
  bool reconverged = false;
  double utility_rel_err = 0.0;
};

bench::JsonValue DistributedJson(const DistributedRun& run) {
  return bench::JsonValue::Object()
      .Add("recovered", bench::JsonValue::Bool(run.recovered))
      .Add("monitor_rounds",
           bench::JsonValue::Number(static_cast<double>(run.monitor_rounds)))
      .Add("ms_to_recovery", bench::JsonValue::Number(run.ms_to_recovery))
      .Add("repair_rounds",
           bench::JsonValue::Number(static_cast<double>(run.repair_rounds)))
      .Add("stale_rejected",
           bench::JsonValue::Number(static_cast<double>(run.stale_rejected)))
      .Add("reconverged", bench::JsonValue::Bool(run.reconverged))
      .Add("utility_rel_err", bench::JsonValue::Number(run.utility_rel_err));
}

/// Crashes resource 0 of a converged async deployment and restarts it cold
/// or from a snapshot; recovery is counted in monitor periods until the
/// agent's published price is back within 1e-6 of its pre-crash value.
DistributedRun RunDistributed(const Workload& workload,
                              const LatencyModel& model, bool checkpointed) {
  obs::MetricRegistry metrics;
  runtime::Coordinator coordinator(workload, model,
                                   AsyncRecoveryConfig(&metrics));
  coordinator.RunAsync(250000.0);
  DistributedRun run;
  if (!coordinator.Converged()) return run;

  const ResourceId victim(0u);
  const double utility_before = coordinator.CurrentUtility();
  const double mu_before = coordinator.agent(victim).mu();
  const runtime::ResourceAgentSnapshot snapshot =
      coordinator.CheckpointResource(victim);

  coordinator.CrashEndpoint(victim);
  // Short outage: pre-crash prices are still in flight at restart, so the
  // cold path also pays the incarnation-gated stale rejection.
  coordinator.RunAsync(2.0);
  if (checkpointed) {
    coordinator.RestartEndpoint(victim, snapshot);
  } else {
    coordinator.RestartEndpoint(victim);
  }

  const double monitor_period = 10.0;
  const int max_rounds = 1000;
  const auto price_recovered = [&] {
    const runtime::ResourceAgent& agent = coordinator.agent(victim);
    return !agent.crashed() && !agent.awaiting_repair() &&
           std::fabs(agent.mu() - mu_before) <=
               1e-6 * std::max(1.0, std::fabs(mu_before));
  };
  while (run.monitor_rounds < max_rounds && !price_recovered()) {
    coordinator.RunAsync(monitor_period);
    ++run.monitor_rounds;
  }
  run.recovered = price_recovered();
  run.ms_to_recovery = run.monitor_rounds * monitor_period;
  run.repair_rounds = metrics.GetCounter("recovery.repair_rounds")->value();
  run.stale_rejected = metrics.GetCounter("recovery.stale_rejected")->value();

  // Let the deployment settle again and verify the fault left no residue.
  coordinator.RunAsync(250000.0);
  run.reconverged = coordinator.Converged();
  run.utility_rel_err =
      std::fabs(coordinator.CurrentUtility() - utility_before) /
      std::max(1.0, std::fabs(utility_before));
  return run;
}

}  // namespace

int main(int argc, char** argv) {
  bool quick = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) quick = true;
  }

  bench::PrintHeader(
      "bench_recovery — rounds to re-converge after a crash-restart",
      "crash-restart recovery: durable checkpoints + incarnation-stamped "
      "repair (DESIGN.md §7.7)",
      "checkpointed restart re-converges in strictly fewer rounds than cold "
      "restart, in every scenario (engine and distributed layers)");

  bool pass = true;

  // --- Engine layer.
  bench::JsonValue engine_results = bench::JsonValue::Array();
  auto paper = MakeScaledSimWorkload(1, /*scale_critical_times=*/true);
  if (!paper.ok()) {
    std::printf("workload error: %s\n", paper.error().c_str());
    return 1;
  }
  pass &= RunEngineScenario("paper_3task", paper.value(), &engine_results);

  if (!quick) {
    RandomWorkloadConfig random_config;
    random_config.seed = 42;
    random_config.target_utilization = 0.7;
    auto random_workload = MakeRandomWorkload(random_config);
    if (!random_workload.ok()) {
      std::printf("workload error: %s\n", random_workload.error().c_str());
      return 1;
    }
    pass &= RunEngineScenario("random_default", random_workload.value(),
                              &engine_results);
  }

  // --- Distributed layer: async deployment, resource 0 crash-restart.
  auto sim = MakeSimWorkload();
  if (!sim.ok()) {
    std::printf("workload error: %s\n", sim.error().c_str());
    return 1;
  }
  LatencyModel sim_model(sim.value());
  std::printf("\npaper_sim (async deployment): crash + restart of resource 0\n");
  const DistributedRun cold = RunDistributed(sim.value(), sim_model, false);
  const DistributedRun ckpt = RunDistributed(sim.value(), sim_model, true);
  std::printf("  %-26s %6d monitor rounds (%.0f ms)  repair_rounds %llu  "
              "stale_rejected %llu  rel_err %.2e%s\n",
              "cold restart", cold.monitor_rounds, cold.ms_to_recovery,
              static_cast<unsigned long long>(cold.repair_rounds),
              static_cast<unsigned long long>(cold.stale_rejected),
              cold.utility_rel_err,
              cold.recovered && cold.reconverged ? "" : "  [DID NOT RECOVER]");
  std::printf("  %-26s %6d monitor rounds (%.0f ms)  repair_rounds %llu  "
              "stale_rejected %llu  rel_err %.2e%s\n",
              "checkpointed restart", ckpt.monitor_rounds, ckpt.ms_to_recovery,
              static_cast<unsigned long long>(ckpt.repair_rounds),
              static_cast<unsigned long long>(ckpt.stale_rejected),
              ckpt.utility_rel_err,
              ckpt.recovered && ckpt.reconverged ? "" : "  [DID NOT RECOVER]");
  const bool distributed_pass = cold.recovered && cold.reconverged &&
                                ckpt.recovered && ckpt.reconverged &&
                                ckpt.monitor_rounds < cold.monitor_rounds;
  std::printf("  checkpointed %d < cold %d monitor rounds: %s\n",
              ckpt.monitor_rounds, cold.monitor_rounds,
              distributed_pass ? "yes" : "NO");
  pass &= distributed_pass;

  std::printf("\nacceptance gate (checkpointed < cold in every scenario): %s\n",
              pass ? "PASS" : "FAIL");

  bench::JsonValue root =
      bench::BenchReportRoot("recovery", "rounds_to_reconverge", quick);
  root.Add("checkpoint_beats_cold", bench::JsonValue::Bool(pass));
  root.Add("results",
           bench::JsonValue::Object()
               .Add("engine", std::move(engine_results))
               .Add("distributed",
                    bench::JsonValue::Object()
                        .Add("workload", bench::JsonValue::String("paper_sim"))
                        .Add("cold", DistributedJson(cold))
                        .Add("checkpointed", DistributedJson(ckpt))));
  if (bench::EmitBenchReport("BENCH_recovery.json", root) != 0) return 1;
  return pass ? 0 : 1;
}
