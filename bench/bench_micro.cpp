// Micro-benchmarks (google-benchmark) for the kernels whose cost the paper
// discusses qualitatively ("computation overhead induced by the optimizer is
// rather small", Sec. 6.4): one LLA iteration, its two half-steps, message
// serialization, and the discrete-event scheduler inner loop.
#include <benchmark/benchmark.h>

#include "core/engine.h"
#include "net/message.h"
#include "sim/ps_scheduler.h"
#include "sim/system_sim.h"
#include "workloads/paper.h"

namespace lla {
namespace {

void BM_EngineStep(benchmark::State& state) {
  auto workload = MakeScaledSimWorkload(static_cast<int>(state.range(0)),
                                        /*scale_critical_times=*/true);
  const Workload& w = workload.value();
  LatencyModel model(w);
  LlaConfig config;
  config.record_history = false;
  LlaEngine engine(w, model, config);
  for (auto _ : state) {
    benchmark::DoNotOptimize(engine.Step());
  }
  state.SetLabel(std::to_string(w.subtask_count()) + " subtasks");
}
BENCHMARK(BM_EngineStep)->Arg(1)->Arg(2)->Arg(4)->Arg(8);

void BM_LatencyAllocation(benchmark::State& state) {
  auto workload = MakeSimWorkload();
  const Workload& w = workload.value();
  LatencyModel model(w);
  LatencySolver solver(w, model);
  PriceVector prices = PriceVector::Uniform(w, 50.0, 1.0);
  Assignment latencies(w.subtask_count(), 0.0);
  for (auto _ : state) {
    solver.SolveAll(prices, &latencies);
    benchmark::DoNotOptimize(latencies.data());
  }
}
BENCHMARK(BM_LatencyAllocation);

void BM_PriceUpdate(benchmark::State& state) {
  auto workload = MakeSimWorkload();
  const Workload& w = workload.value();
  LatencyModel model(w);
  PriceUpdater updater(w, model);
  PriceVector prices = PriceVector::Uniform(w, 50.0, 1.0);
  StepSizes steps;
  steps.resource.assign(w.resource_count(), 1.0);
  steps.path.assign(w.path_count(), 1.0);
  Assignment latencies(w.subtask_count(), 12.0);
  for (auto _ : state) {
    updater.Update(latencies, steps, &prices);
    benchmark::DoNotOptimize(prices.mu.data());
  }
}
BENCHMARK(BM_PriceUpdate);

void BM_NonlinearUtilitySolve(benchmark::State& state) {
  // The coupled fixed-point path (quadratic utility) vs the linear closed
  // form measured by BM_LatencyAllocation.
  auto base = MakeSimWorkload();
  const Workload& proto = base.value();
  std::vector<ResourceSpec> resources;
  for (const ResourceInfo& r : proto.resources()) {
    resources.push_back({r.name, r.kind, r.capacity, r.lag_ms});
  }
  std::vector<TaskSpec> tasks;
  for (const TaskInfo& task : proto.tasks()) {
    TaskSpec spec;
    spec.name = task.name;
    spec.critical_time_ms = task.critical_time_ms;
    spec.utility = std::make_shared<PowerUtility>(
        2.0 * task.critical_time_ms, 1.0 / task.critical_time_ms, 2.0);
    spec.trigger = task.trigger;
    spec.edges = task.dag.edges();
    for (SubtaskId sid : task.subtasks) {
      const SubtaskInfo& sub = proto.subtask(sid);
      spec.subtasks.push_back(
          {sub.name, sub.resource, sub.wcet_ms, sub.min_share});
    }
    tasks.push_back(std::move(spec));
  }
  auto workload = Workload::Create(std::move(resources), std::move(tasks));
  const Workload& w = workload.value();
  LatencyModel model(w);
  LatencySolver solver(w, model);
  PriceVector prices = PriceVector::Uniform(w, 50.0, 1.0);
  Assignment latencies(w.subtask_count(), 0.0);
  for (auto _ : state) {
    solver.SolveAll(prices, &latencies);
    benchmark::DoNotOptimize(latencies.data());
  }
}
BENCHMARK(BM_NonlinearUtilitySolve);

void BM_MessageSerialize(benchmark::State& state) {
  net::LatencyUpdate update;
  update.task = TaskId(0u);
  for (std::uint32_t i = 0; i < 8; ++i) {
    update.subtasks.push_back(SubtaskId(std::size_t{i}));
    update.latencies_ms.push_back(12.5 + i);
  }
  net::Message message;
  message.payload = std::move(update);
  for (auto _ : state) {
    auto bytes = net::Serialize(message);
    benchmark::DoNotOptimize(bytes.data());
  }
}
BENCHMARK(BM_MessageSerialize);

void BM_MessageRoundTrip(benchmark::State& state) {
  net::Message message;
  message.payload = net::ResourcePriceUpdate{ResourceId(3u), 179.5, 42, true};
  const auto bytes = net::Serialize(message);
  for (auto _ : state) {
    auto decoded = net::Deserialize(bytes);
    benchmark::DoNotOptimize(decoded);
  }
}
BENCHMARK(BM_MessageRoundTrip);

void BM_GpsSchedulerBusyPeriod(benchmark::State& state) {
  const int flows = static_cast<int>(state.range(0));
  for (auto _ : state) {
    sim::GpsScheduler gps(1.0);
    std::vector<int> ids;
    for (int i = 0; i < flows; ++i) ids.push_back(gps.AddFlow(1.0 + i % 3));
    std::uint64_t job = 0;
    for (int round = 0; round < 16; ++round) {
      for (int i = 0; i < flows; ++i) {
        gps.Enqueue(ids[i], {job++, 2.0, gps.now_ms()});
      }
      gps.AdvanceTo(gps.now_ms() + 2.0 * flows, nullptr);
    }
    benchmark::DoNotOptimize(gps.now_ms());
  }
}
BENCHMARK(BM_GpsSchedulerBusyPeriod)->Arg(4)->Arg(12)->Arg(32);

void BM_PrototypeSimulationSecond(benchmark::State& state) {
  auto workload = MakePrototypeWorkload();
  const Workload& w = workload.value();
  sim::SimConfig config;
  config.duration_ms = 1000.0;
  config.warmup_ms = 0.0;
  std::vector<double> shares(w.subtask_count());
  for (const SubtaskInfo& sub : w.subtasks()) {
    shares[sub.id.value()] = sub.min_share > 0.15 ? 0.2857 : 0.1643;
  }
  for (auto _ : state) {
    sim::SystemSimulator simulator(w, config);
    benchmark::DoNotOptimize(simulator.Run(shares).jobs_completed);
  }
}
BENCHMARK(BM_PrototypeSimulationSecond);

}  // namespace
}  // namespace lla

BENCHMARK_MAIN();
