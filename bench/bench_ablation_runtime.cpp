// Ablation of the distributed deployment (Sec. 4.1 / 4.4 claims):
//   * synchronous rounds vs the single-process engine (identical optimum);
//   * asynchronous execution under growing network delay, jitter and loss
//     (robustness of the price protocol);
//   * enactment policy: how few allocation changes the executing system
//     actually sees, and the message/byte cost of the protocol.
#include <cmath>
#include <cstdio>

#include "bench_util.h"
#include "core/engine.h"
#include "runtime/coordinator.h"
#include "workloads/paper.h"

using namespace lla;
using namespace lla::runtime;

int main() {
  bench::PrintHeader(
      "bench_ablation_runtime — distributed deployment ablation",
      "Sec. 4.1 (distributed protocol), Sec. 4.4 (enactment/batch, "
      "overhead)",
      "sync rounds match the single-process optimum; async converges to the "
      "same value under delay/jitter/loss; enactments are sparse after "
      "convergence");

  auto workload = MakeSimWorkload();
  const Workload& w = workload.value();

  // Reference: single-process engine.
  double engine_utility = 0.0;
  {
    LatencyModel model(w);
    LlaConfig config = bench::PaperLlaConfig();
    config.gamma0 = 3.0;
    config.record_history = false;
    LlaEngine engine(w, model, config);
    engine_utility = engine.Run(12000).final_utility;
    std::printf("\nsingle-process engine utility: %.4f\n", engine_utility);
  }

  // Synchronous distributed rounds.
  {
    LatencyModel model(w);
    CoordinatorConfig config;
    config.step.gamma0 = 3.0;
    config.bus.base_delay_ms = 0.0;
    Coordinator coordinator(w, model, config);
    const RunResult run = coordinator.RunSync(12000);
    const auto& stats = coordinator.bus().stats();
    std::printf("\nsync distributed:  rounds=%d utility=%.4f "
                "(gap to engine %.5f)\n",
                run.iterations, run.final_utility,
                std::fabs(run.final_utility - engine_utility));
    std::printf("  traffic: %llu msgs, %.1f KiB total, %.1f B/round; "
                "enactments=%zu of %zu samples\n",
                static_cast<unsigned long long>(stats.delivered),
                stats.bytes / 1024.0,
                static_cast<double>(stats.bytes) / run.iterations,
                coordinator.enactments().size(),
                coordinator.history().size());
  }

  // Asynchronous under increasing network badness.
  std::printf("\nasync distributed (10 ms agent periods, 150 s virtual "
              "time):\n");
  std::printf("%-34s %12s %10s %10s %12s\n", "network", "utility",
              "converged", "feasible", "msgs dropped");
  struct NetCase {
    const char* label;
    double delay, jitter, drop;
  };
  const NetCase cases[] = {
      {"ideal (0 delay)", 0.0, 0.0, 0.0},
      {"LAN (1 ms +- 2)", 1.0, 2.0, 0.0},
      {"lossy LAN (2% loss)", 1.0, 2.0, 0.02},
      {"WAN (20 ms +- 10)", 20.0, 10.0, 0.0},
      {"bad WAN (20 ms, 10% loss)", 20.0, 10.0, 0.10},
  };
  for (const NetCase& net : cases) {
    LatencyModel model(w);
    CoordinatorConfig config;
    config.step.gamma0 = 3.0;
    config.bus.base_delay_ms = net.delay;
    config.bus.jitter_ms = net.jitter;
    config.bus.drop_probability = net.drop;
    config.bus.seed = 17;
    Coordinator coordinator(w, model, config);
    coordinator.RunAsync(150000.0);
    std::printf("%-34s %12.4f %10s %10s %12llu\n", net.label,
                coordinator.CurrentUtility(),
                coordinator.Converged() ? "yes" : "no",
                coordinator.CurrentFeasibility().feasible ? "yes" : "no",
                static_cast<unsigned long long>(
                    coordinator.bus().stats().dropped));
  }

  std::printf("\n(The protocol tolerates delay and loss because prices and "
              "latencies are\nabsolute state, not deltas: a dropped update "
              "is repaired by the next one.)\n");
  return 0;
}
