// Reproduces Figure 5: the effect of fixed and adaptive step sizes on
// convergence of the total utility.
//
// Scale note (see EXPERIMENTS.md): our utility normalization shifts the
// interesting gamma range by ~10x relative to the paper's {0.1, 1, 10}; we
// sweep {0.1, 1, 10, 100} so the three published regimes — too slow /
// converging / oscillating — all appear, plus the adaptive heuristic which
// settles fastest and to the optimal value.
#include <cstdio>
#include <cstring>
#include <memory>
#include <thread>

#include "bench_util.h"
#include "core/engine.h"
#include "core/engine_batch.h"
#include "obs/trace.h"
#include "workloads/paper.h"

using namespace lla;

namespace {

struct RunSummary {
  std::string label;
  std::vector<IterationStats> history;
  double final_utility = 0.0;
};

struct PolicyRun {
  std::string label;
  LlaConfig config;
};

// Runs every policy concurrently through an EngineBatch (each engine traces
// into its own RingBufferTraceSink — batch members must not share a sink),
// then replays each buffer serially into the shared JSONL sink under the
// run's label, so the file splits back into one Figure 5 series per policy.
// Trajectories are bit-identical to running the policies one by one.
std::vector<RunSummary> RunPolicies(const std::vector<PolicyRun>& policies,
                                    const Workload& w,
                                    const LatencyModel& model, int iterations,
                                    obs::TraceSink* sink) {
  std::vector<std::unique_ptr<obs::RingBufferTraceSink>> rings;
  const int num_threads =
      std::max(1u, std::thread::hardware_concurrency());
  EngineBatch batch(num_threads);
  for (const PolicyRun& policy : policies) {
    rings.push_back(std::make_unique<obs::RingBufferTraceSink>(
        static_cast<std::size_t>(iterations)));
    LlaConfig config = policy.config;
    config.record_history = true;
    config.convergence.rel_tol = 1e-9;  // run the full horizon for the trace
    config.trace_sink = rings.back().get();
    batch.Add(w, model, config);
  }
  batch.StepAll(iterations);

  std::vector<RunSummary> runs;
  for (std::size_t i = 0; i < policies.size(); ++i) {
    if (sink != nullptr) {
      obs::RunInfo info;
      info.label = policies[i].label;
      info.resource_count = w.resource_count();
      info.path_count = w.path_count();
      sink->OnRunBegin(info);
      for (std::size_t r = 0; r < rings[i]->size(); ++r) {
        sink->OnIteration(rings[i]->at(r));
      }
      sink->OnRunEnd();
    }
    RunSummary summary;
    summary.label = policies[i].label;
    summary.history = batch.engine(i).history();
    summary.final_utility = summary.history.back().total_utility;
    runs.push_back(std::move(summary));
  }
  return runs;
}

}  // namespace

int main(int argc, char** argv) {
  std::string trace_path = "BENCH_fig5_stepsize.jsonl";
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--trace-out=", 12) == 0) {
      trace_path = argv[i] + 12;
    } else {
      std::fprintf(stderr, "usage: %s [--trace-out=path.jsonl]\n", argv[0]);
      return 2;
    }
  }

  bench::PrintHeader(
      "bench_fig5_stepsize — fixed vs adaptive step sizes",
      "Figure 5 (utility vs iteration for gamma = 0.1, 1, 10 and adaptive)",
      "small gamma converges slowly; mid gamma converges; large gamma "
      "oscillates without settling; adaptive settles fastest and to the "
      "best value");

  obs::JsonlTraceSink sink(trace_path);
  if (!sink.ok()) {
    std::fprintf(stderr, "cannot open %s for writing\n", trace_path.c_str());
    return 1;
  }

  const int iterations = 3000;
  auto workload = MakeSimWorkload();
  const Workload& w = workload.value();
  LatencyModel model(w);

  std::vector<PolicyRun> policies;
  for (double gamma : {0.1, 1.0, 10.0, 100.0}) {
    LlaConfig config;
    config.step_policy = StepPolicyKind::kFixed;
    config.gamma0 = gamma;
    char label[64];
    std::snprintf(label, sizeof(label), "fixed gamma=%g", gamma);
    policies.push_back({label, config});
  }
  policies.push_back({"adaptive gamma0=4 cap=8", bench::PaperLlaConfig()});
  {
    LlaConfig config;
    config.step_policy = StepPolicyKind::kDiminishing;
    config.gamma0 = 20.0;
    config.diminishing_tau = 200.0;
    policies.push_back({"diminishing g0=20 tau=200 (extension)", config});
  }
  const std::vector<RunSummary> runs =
      RunPolicies(policies, w, model, iterations, &sink);

  std::printf("\nPer-iteration series written to %s (one labelled run per "
              "policy;\nfilter on \"run\" to reconstruct each Figure 5 "
              "curve).\n",
              trace_path.c_str());

  std::printf("\n%-36s %14s %18s  %s\n", "policy", "final utility",
              "iters to 1%-band", "regime");
  for (const RunSummary& run : runs) {
    const int settle = bench::SettleIteration(run.history);
    // Classify the tail: large trailing spread = oscillation; settling only
    // at the very end with a quiet tail = still converging (too slow).
    double tail_min = run.history.back().total_utility;
    double tail_max = tail_min;
    const int tail = 200;
    for (int i = std::max(0, static_cast<int>(run.history.size()) - tail);
         i < static_cast<int>(run.history.size()); ++i) {
      tail_min = std::min(tail_min, run.history[i].total_utility);
      tail_max = std::max(tail_max, run.history[i].total_utility);
    }
    const double spread =
        (tail_max - tail_min) / std::max(1.0, std::abs(run.final_utility));
    // A drifting (monotone) tail means slow convergence; a tail that keeps
    // reversing direction is oscillation.
    int reversals = 0;
    double prev_diff = 0.0;
    for (int i = std::max(1, static_cast<int>(run.history.size()) - tail);
         i < static_cast<int>(run.history.size()); ++i) {
      const double diff = run.history[i].total_utility -
                          run.history[i - 1].total_utility;
      if (diff * prev_diff < 0.0) ++reversals;
      if (diff != 0.0) prev_diff = diff;
    }
    const char* regime = "converged";
    if (spread > 0.02) {
      regime = reversals > 20 ? "oscillates (never settles)"
                              : "still converging (too slow)";
    } else if (settle > iterations - 50) {
      regime = "still converging (too slow)";
    }
    std::printf("%-36s %14.2f %18d  %s\n", run.label.c_str(),
                run.final_utility, settle, regime);
  }

  // Calibration ablation: the paper's doubling heuristic taken literally
  // (no cap) vs capped variants.  Documents why the library defaults to
  // cap = 8 (see EXPERIMENTS.md): congestion streaks double gamma
  // geometrically while price decay is only additive, so the uncapped
  // variant ratchets prices to ~1e6 and turns chaotic.
  std::printf("\nadaptive cap ablation (gamma0 = 1):\n");
  std::printf("%-28s %14s %16s %14s\n", "cap", "final utility",
              "max price mu", "feasible");
  const std::vector<double> caps = {2.0, 4.0, 8.0, 16.0, 64.0, 65536.0};
  EngineBatch ablation(
      std::max(1u, std::thread::hardware_concurrency()));
  for (double cap : caps) {
    LlaConfig config;
    config.step_policy = StepPolicyKind::kAdaptive;
    config.gamma0 = 1.0;
    config.adaptive_max_multiplier = cap;
    config.record_history = false;
    config.convergence.rel_tol = 1e-9;
    ablation.Add(w, model, config);
  }
  ablation.StepAll(3000);
  for (std::size_t i = 0; i < caps.size(); ++i) {
    LlaEngine& engine = ablation.engine(i);
    double max_mu = 0.0;
    for (double mu : engine.prices().mu) max_mu = std::max(max_mu, mu);
    char label[32];
    std::snprintf(label, sizeof(label),
                  caps[i] > 1000 ? "%.0f (~uncapped)" : "%.0f", caps[i]);
    std::printf("%-28s %14.2f %16.1f %14s\n", label, engine.TotalUtilityNow(),
                max_mu, engine.Feasibility().feasible ? "yes" : "no");
  }
  return 0;
}
