// Reproduces Figure 5: the effect of fixed and adaptive step sizes on
// convergence of the total utility.
//
// Scale note (see EXPERIMENTS.md): our utility normalization shifts the
// interesting gamma range by ~10x relative to the paper's {0.1, 1, 10}; we
// sweep {0.1, 1, 10, 100} so the three published regimes — too slow /
// converging / oscillating — all appear, plus the adaptive heuristic which
// settles fastest and to the optimal value.
#include <cstdio>
#include <cstring>

#include "bench_util.h"
#include "core/engine.h"
#include "obs/trace.h"
#include "workloads/paper.h"

using namespace lla;

namespace {

struct RunSummary {
  std::string label;
  std::vector<IterationStats> history;
  double final_utility = 0.0;
};

// Runs one policy with the sink attached; the sink receives the full
// per-iteration series (utility, share sums, prices, step sizes) under the
// run's label, so the JSONL file splits back into one Figure 5 series per
// policy.
RunSummary RunPolicy(const std::string& label, LlaConfig config,
                     int iterations, obs::TraceSink* sink) {
  auto workload = MakeSimWorkload();
  const Workload& w = workload.value();
  LatencyModel model(w);
  config.record_history = true;
  config.convergence.rel_tol = 1e-9;  // run the full horizon for the trace
  config.trace_sink = sink;
  if (sink != nullptr) {
    obs::RunInfo info;
    info.label = label;
    info.resource_count = w.resource_count();
    info.path_count = w.path_count();
    sink->OnRunBegin(info);
  }
  LlaEngine engine(w, model, config);
  for (int i = 0; i < iterations; ++i) engine.Step();
  if (sink != nullptr) sink->OnRunEnd();
  RunSummary summary;
  summary.label = label;
  summary.history = engine.history();
  summary.final_utility = summary.history.back().total_utility;
  return summary;
}

}  // namespace

int main(int argc, char** argv) {
  std::string trace_path = "BENCH_fig5_stepsize.jsonl";
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--trace-out=", 12) == 0) {
      trace_path = argv[i] + 12;
    } else {
      std::fprintf(stderr, "usage: %s [--trace-out=path.jsonl]\n", argv[0]);
      return 2;
    }
  }

  bench::PrintHeader(
      "bench_fig5_stepsize — fixed vs adaptive step sizes",
      "Figure 5 (utility vs iteration for gamma = 0.1, 1, 10 and adaptive)",
      "small gamma converges slowly; mid gamma converges; large gamma "
      "oscillates without settling; adaptive settles fastest and to the "
      "best value");

  obs::JsonlTraceSink sink(trace_path);
  if (!sink.ok()) {
    std::fprintf(stderr, "cannot open %s for writing\n", trace_path.c_str());
    return 1;
  }

  const int iterations = 3000;
  std::vector<RunSummary> runs;
  for (double gamma : {0.1, 1.0, 10.0, 100.0}) {
    LlaConfig config;
    config.step_policy = StepPolicyKind::kFixed;
    config.gamma0 = gamma;
    char label[64];
    std::snprintf(label, sizeof(label), "fixed gamma=%g", gamma);
    runs.push_back(RunPolicy(label, config, iterations, &sink));
  }
  {
    LlaConfig config = bench::PaperLlaConfig();
    runs.push_back(
        RunPolicy("adaptive gamma0=4 cap=8", config, iterations, &sink));
  }
  {
    LlaConfig config;
    config.step_policy = StepPolicyKind::kDiminishing;
    config.gamma0 = 20.0;
    config.diminishing_tau = 200.0;
    runs.push_back(
        RunPolicy("diminishing g0=20 tau=200 (extension)", config, iterations,
                  &sink));
  }

  std::printf("\nPer-iteration series written to %s (one labelled run per "
              "policy;\nfilter on \"run\" to reconstruct each Figure 5 "
              "curve).\n",
              trace_path.c_str());

  std::printf("\n%-36s %14s %18s  %s\n", "policy", "final utility",
              "iters to 1%-band", "regime");
  for (const RunSummary& run : runs) {
    const int settle = bench::SettleIteration(run.history);
    // Classify the tail: large trailing spread = oscillation; settling only
    // at the very end with a quiet tail = still converging (too slow).
    double tail_min = run.history.back().total_utility;
    double tail_max = tail_min;
    const int tail = 200;
    for (int i = std::max(0, static_cast<int>(run.history.size()) - tail);
         i < static_cast<int>(run.history.size()); ++i) {
      tail_min = std::min(tail_min, run.history[i].total_utility);
      tail_max = std::max(tail_max, run.history[i].total_utility);
    }
    const double spread =
        (tail_max - tail_min) / std::max(1.0, std::abs(run.final_utility));
    // A drifting (monotone) tail means slow convergence; a tail that keeps
    // reversing direction is oscillation.
    int reversals = 0;
    double prev_diff = 0.0;
    for (int i = std::max(1, static_cast<int>(run.history.size()) - tail);
         i < static_cast<int>(run.history.size()); ++i) {
      const double diff = run.history[i].total_utility -
                          run.history[i - 1].total_utility;
      if (diff * prev_diff < 0.0) ++reversals;
      if (diff != 0.0) prev_diff = diff;
    }
    const char* regime = "converged";
    if (spread > 0.02) {
      regime = reversals > 20 ? "oscillates (never settles)"
                              : "still converging (too slow)";
    } else if (settle > iterations - 50) {
      regime = "still converging (too slow)";
    }
    std::printf("%-36s %14.2f %18d  %s\n", run.label.c_str(),
                run.final_utility, settle, regime);
  }

  // Calibration ablation: the paper's doubling heuristic taken literally
  // (no cap) vs capped variants.  Documents why the library defaults to
  // cap = 8 (see EXPERIMENTS.md): congestion streaks double gamma
  // geometrically while price decay is only additive, so the uncapped
  // variant ratchets prices to ~1e6 and turns chaotic.
  std::printf("\nadaptive cap ablation (gamma0 = 1):\n");
  std::printf("%-28s %14s %16s %14s\n", "cap", "final utility",
              "max price mu", "feasible");
  for (double cap : {2.0, 4.0, 8.0, 16.0, 64.0, 65536.0}) {
    auto workload = MakeSimWorkload();
    const Workload& w = workload.value();
    LatencyModel model(w);
    LlaConfig config;
    config.step_policy = StepPolicyKind::kAdaptive;
    config.gamma0 = 1.0;
    config.adaptive_max_multiplier = cap;
    config.record_history = false;
    config.convergence.rel_tol = 1e-9;
    LlaEngine engine(w, model, config);
    for (int i = 0; i < 3000; ++i) engine.Step();
    double max_mu = 0.0;
    for (double mu : engine.prices().mu) max_mu = std::max(max_mu, mu);
    char label[32];
    std::snprintf(label, sizeof(label), cap > 1000 ? "%.0f (~uncapped)" : "%.0f",
                  cap);
    std::printf("%-28s %14.2f %16.1f %14s\n", label,
                engine.history().empty() ? engine.TotalUtilityNow()
                                         : engine.TotalUtilityNow(),
                max_mu, engine.Feasibility().feasible ? "yes" : "no");
  }
  return 0;
}
