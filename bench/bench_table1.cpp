// Reproduces Table 1: converged subtask latencies and critical paths for the
// 3-task simulation workload, next to the paper's published values.
#include <cmath>
#include <cstdio>

#include "bench_util.h"
#include "core/engine.h"
#include "model/evaluation.h"
#include "solver/kkt.h"
#include "workloads/paper.h"

using namespace lla;

int main() {
  bench::PrintHeader(
      "bench_table1 — converged latency assignment",
      "Table 1 (task parameters and optimization results)",
      "all 8 resources saturate (share sums ~1.0); every critical path lands "
      "within 1% of its critical time; latencies in the same range as the "
      "published ones");

  auto workload = MakeSimWorkload();
  if (!workload.ok()) {
    std::printf("workload error: %s\n", workload.error().c_str());
    return 1;
  }
  const Workload& w = workload.value();
  LatencyModel model(w);
  LlaConfig config = bench::PaperLlaConfig();
  config.convergence.rel_tol = 1e-6;
  LlaEngine engine(w, model, config);
  const RunResult run = engine.Run(12000);

  std::printf("\nconverged=%s after %d iterations, total utility %.3f "
              "(path-weighted)\n\n",
              run.converged ? "yes" : "no", run.iterations,
              run.final_utility);

  std::printf("%-20s %10s %12s %12s\n", "subtask", "exec(ms)", "lat LLA(ms)",
              "lat paper(ms)");
  const auto& reference = GetTable1Reference();
  for (const SubtaskInfo& sub : w.subtasks()) {
    std::printf("%-20s %10.1f %12.2f %12.2f\n", sub.name.c_str(), sub.wcet_ms,
                engine.latencies()[sub.id.value()],
                reference.latencies_ms[sub.id.value()]);
  }

  std::printf("\n%-20s %12s %14s %16s\n", "task", "crit time",
              "crit path LLA", "crit path paper");
  for (const TaskInfo& task : w.tasks()) {
    const double crit = CriticalPathLatency(w, task.id, engine.latencies());
    std::printf("%-20s %12.1f %14.2f %16.1f   (%.2f%% below deadline)\n",
                task.name.c_str(), task.critical_time_ms, crit,
                reference.critical_paths_ms[task.id.value()],
                100.0 * (1.0 - crit / task.critical_time_ms));
  }

  std::printf("\n%-12s %12s %10s\n", "resource", "share sum", "price mu");
  const FeasibilityReport report = engine.Feasibility();
  for (const ResourceInfo& resource : w.resources()) {
    std::printf("%-12s %12.4f %10.2f\n", resource.name.c_str(),
                report.resource_share_sums[resource.id.value()],
                engine.prices().mu[resource.id.value()]);
  }

  LatencySolver solver(w, model, config.solver);
  const KktReport kkt = CheckKkt(w, model, solver, engine.latencies(),
                                 engine.prices(), config.solver.variant);
  std::printf("\nKKT residuals: %s\n", kkt.Summary().c_str());
  return 0;
}
