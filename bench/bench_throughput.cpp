// Measures full LLA iterations per second (one Step = latency allocation +
// price computation + stats) on the large paper and random workloads, for
// the scalar reference path and the fused StepWorkspace engine across
// thread counts.  Also writes BENCH_throughput.json so the perf trajectory
// is machine-readable.
//
// The "scalar reference" stepper replicates the pre-StepWorkspace engine:
// the solver recomputes its box bounds on every evaluation
// (cache_invariants = false) and every per-step consumer — congestion
// detection, price update, utility stats, feasibility, convergence — walks
// the workload independently.  Both paths produce bit-identical
// trajectories (asserted below), so the speedup is pure constant-factor.
#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <deque>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "core/engine.h"
#include "core/engine_batch.h"
#include "workloads/paper.h"
#include "workloads/random.h"

using namespace lla;

namespace {

// The pre-StepWorkspace LlaEngine::Step(), reassembled from the scalar
// oracles (kept in the library as the reference path).
class ScalarReferenceEngine {
 public:
  ScalarReferenceEngine(const Workload& workload, const LatencyModel& model,
                        LlaConfig config)
      : workload_(&workload),
        model_(&model),
        config_(config),
        solver_(workload, model,
                [&config] {
                  LatencySolverConfig solver_config = config.solver;
                  solver_config.cache_invariants = false;
                  return solver_config;
                }()),
        updater_(workload, model),
        step_policy_(MakeStepPolicy(config)) {
    prices_ = PriceVector::Uniform(workload, config.initial_mu,
                                   config.initial_lambda);
    latencies_.assign(workload.subtask_count(), 0.0);
    step_policy_->Reset(workload);
    solver_.SolveAll(prices_, &latencies_);
  }

  IterationStats Step() {
    solver_.SolveAll(prices_, &latencies_);
    const std::vector<bool> congested =
        updater_.ResourceCongestion(latencies_);
    step_policy_->Update(*workload_, congested, &steps_);
    updater_.Update(latencies_, steps_, &prices_);
    ++iteration_;

    IterationStats stats;
    stats.iteration = iteration_;
    stats.total_utility =
        TotalUtility(*workload_, latencies_, config_.solver.variant);
    const FeasibilityReport feasibility =
        CheckFeasibility(*workload_, *model_, latencies_,
                         config_.convergence.feasibility_tol);
    stats.max_resource_excess = feasibility.max_resource_excess;
    stats.max_path_ratio = feasibility.max_path_ratio;
    stats.feasible = feasibility.feasible;
    UpdateConvergence(stats.total_utility);
    return stats;
  }

 private:
  void UpdateConvergence(double utility) {
    const ConvergenceConfig& conv = config_.convergence;
    recent_utilities_.push_back(utility);
    while (static_cast<int>(recent_utilities_.size()) > conv.window) {
      recent_utilities_.pop_front();
    }
    if (static_cast<int>(recent_utilities_.size()) < conv.window) return;
    double lo = recent_utilities_.front(), hi = recent_utilities_.front();
    for (double u : recent_utilities_) {
      lo = std::min(lo, u);
      hi = std::max(hi, u);
    }
    bool settled = (hi - lo) <= conv.rel_tol * std::max(1.0, std::fabs(hi));
    if (settled && conv.require_complementary_slackness) {
      double residual = 0.0;
      for (const ResourceInfo& resource : workload_->resources()) {
        const double slack =
            resource.capacity - ResourceShareSum(*workload_, *model_,
                                                 resource.id, latencies_);
        residual = std::max(residual,
                            prices_.mu[resource.id.value()] *
                                std::max(0.0, slack) / resource.capacity);
      }
      for (const PathInfo& path : workload_->paths()) {
        const double slack = 1.0 - PathLatency(*workload_, path.id,
                                               latencies_) /
                                       path.critical_time_ms;
        residual = std::max(residual, prices_.lambda[path.id.value()] *
                                          std::max(0.0, slack));
      }
      settled = residual <= conv.complementarity_tol;
    }
    if (settled && conv.require_feasible) {
      settled = CheckFeasibility(*workload_, *model_, latencies_,
                                 conv.feasibility_tol)
                    .feasible;
    }
  }

  const Workload* workload_;
  const LatencyModel* model_;
  LlaConfig config_;
  LatencySolver solver_;
  PriceUpdater updater_;
  std::unique_ptr<StepSizePolicy> step_policy_;
  StepSizes steps_;
  PriceVector prices_;
  Assignment latencies_;
  int iteration_ = 0;
  std::deque<double> recent_utilities_;
};

// Best-of-`reps` timing (min elapsed), the standard defence against noisy
// shared hosts: scheduler hiccups only ever make a repetition slower.
template <typename Stepper>
double MeasureStepsPerSec(Stepper& stepper, int warmup, int iters,
                          int reps = 3) {
  double last_utility = 0.0;
  for (int i = 0; i < warmup; ++i) last_utility = stepper.Step().total_utility;
  double best_seconds = 0.0;
  for (int rep = 0; rep < reps; ++rep) {
    const auto start = std::chrono::steady_clock::now();
    for (int i = 0; i < iters; ++i) {
      last_utility = stepper.Step().total_utility;
    }
    const auto stop = std::chrono::steady_clock::now();
    const double seconds =
        std::chrono::duration<double>(stop - start).count();
    if (rep == 0 || seconds < best_seconds) best_seconds = seconds;
  }
  (void)last_utility;
  return iters / best_seconds;
}

struct WorkloadCase {
  std::string name;
  const Workload* workload;
  int warmup;
  int iters;
};

}  // namespace

int main(int argc, char** argv) {
  const bool quick = bench::HasQuickFlag(argc, argv);

  bench::PrintHeader(
      "bench_throughput — full LLA iterations per second",
      "engine hot path (fused one-region step + invariant caching + "
      "EngineBatch coarse parallelism)",
      "fused >= 2x the scalar reference single-threaded; steps/s must not "
      "decrease as threads increase past the grain cutoff");

  const unsigned hardware = std::max(1u, std::thread::hardware_concurrency());
  std::printf("hardware_concurrency: %u%s\n", hardware,
              quick ? "  (--quick)" : "");

  auto fig6 = MakeScaledSimWorkload(4, /*scale_critical_times=*/true);
  if (!fig6.ok()) {
    std::printf("workload error: %s\n", fig6.error().c_str());
    return 1;
  }
  RandomWorkloadConfig random_config;
  random_config.seed = 7;
  random_config.num_resources = 24;
  random_config.num_tasks = 96;
  random_config.min_subtasks = 4;
  random_config.max_subtasks = 8;
  random_config.target_utilization = 0.7;
  auto random_workload = MakeRandomWorkload(random_config);
  if (!random_workload.ok()) {
    std::printf("workload error: %s\n", random_workload.error().c_str());
    return 1;
  }

  const int scale = quick ? 20 : 1;
  const std::vector<WorkloadCase> cases = {
      {"fig6_12task", &fig6.value(), 500 / scale, 60000 / scale},
      {"random_96task", &random_workload.value(), 100 / scale, 6000 / scale},
  };

  // Every requested width is measured, but a width the pool clamps to fewer
  // effective threads (1-core CI hosts clamp everything to serial) carries
  // "clamped": true in its JSON row and makes NO scaling claim: a clamped
  // row re-measures the serial engine, so its speedup_vs_1thread is noise,
  // not evidence — reporting it (or WARNing on its efficiency) would turn
  // host topology into a fake regression signal.
  const std::vector<int> thread_counts = {1, 2, 4};
  const bool clamped =
      static_cast<int>(hardware) <
      *std::max_element(thread_counts.begin(), thread_counts.end());
  if (clamped) {
    std::printf("hardware clamps some thread widths: scaling claims "
                "suppressed on clamped rows\n");
  }

  bench::JsonValue results = bench::JsonValue::Array();
  for (const WorkloadCase& wc : cases) {
    const Workload& w = *wc.workload;
    LatencyModel model(w);
    LlaConfig config = bench::PaperLlaConfig();
    config.record_history = false;

    std::printf("\n%s: %zu tasks, %zu subtasks, %zu resources, %zu paths\n",
                wc.name.c_str(), w.task_count(), w.subtask_count(),
                w.resource_count(), w.path_count());

    // Sanity: the fused engine and the scalar reference must agree exactly.
    {
      ScalarReferenceEngine scalar(w, model, config);
      LlaEngine fused(w, model, config);
      for (int i = 0; i < 200; ++i) {
        const double a = scalar.Step().total_utility;
        const double b = fused.Step().total_utility;
        if (a != b) {
          std::printf("MISMATCH at step %d: scalar %.17g fused %.17g\n", i,
                      a, b);
          return 1;
        }
      }
    }

    ScalarReferenceEngine scalar(w, model, config);
    const double scalar_rate =
        MeasureStepsPerSec(scalar, wc.warmup, wc.iters);
    std::printf("  %-28s %12.0f steps/sec\n", "scalar reference",
                scalar_rate);

    bench::JsonValue threads = bench::JsonValue::Array();
    double fused_serial_rate = 0.0;
    for (int num_threads : thread_counts) {
      config.num_threads = num_threads;
      LlaEngine engine(w, model, config);
      const double rate = MeasureStepsPerSec(engine, wc.warmup, wc.iters);
      if (num_threads == 1) fused_serial_rate = rate;
      // Speedup is relative to the fused 1-thread run; efficiency divides
      // by the threads that can actually exist on this host (the pool clamps
      // to hardware concurrency, so asking for 4 threads on a 1-core box
      // runs serial and should score ~1.0, not 0.25).  A clamped row makes
      // no scaling claim at all — see the comment at thread_counts.
      const int effective =
          std::min(num_threads, static_cast<int>(hardware));
      const bool row_clamped = num_threads > static_cast<int>(hardware);
      const double speedup = rate / fused_serial_rate;
      const double efficiency = speedup / effective;
      if (row_clamped) {
        std::printf("  fused, num_threads=%-12d %12.0f steps/sec  (%.2fx "
                    "scalar; clamped to %d thread%s, no scaling claim)\n",
                    num_threads, rate, rate / scalar_rate, effective,
                    effective == 1 ? "" : "s");
      } else {
        std::printf("  fused, num_threads=%-12d %12.0f steps/sec  (%.2fx "
                    "scalar, %.2fx 1-thread, efficiency %.2f)\n",
                    num_threads, rate, rate / scalar_rate, speedup,
                    efficiency);
        if (efficiency < 1.0) {
          std::printf("  WARN: scaling efficiency %.2f < 1.0 at "
                      "num_threads=%d (%d effective)\n",
                      efficiency, num_threads, effective);
        }
      }
      bench::JsonValue row =
          bench::JsonValue::Object()
              .Add("num_threads", bench::JsonValue::Number(num_threads))
              .Add("effective_threads",
                   bench::JsonValue::Number(effective))
              .Add("clamped", bench::JsonValue::Bool(row_clamped))
              .Add("steps_per_sec", bench::JsonValue::Number(rate));
      if (!row_clamped) {
        row.Add("speedup_vs_1thread", bench::JsonValue::Number(speedup))
            .Add("scaling_efficiency", bench::JsonValue::Number(efficiency));
      }
      threads.Push(std::move(row));
    }
    config.num_threads = 1;

    // Coarse-grained parallelism: B independent engines stepped as a batch
    // (one pool wake-up per StepAll, grain of one engine).  This is the
    // granularity that scales on multicore — aggregate steps/s across the
    // batch vs. stepping the same engines sequentially.
    bench::JsonValue batches = bench::JsonValue::Array();
    double batch_serial_rate = 0.0;
    for (int num_threads : thread_counts) {
      const int batch_size = 4;
      // Same effective-thread clamp as the in-engine pool: a clamped row
      // must not oversubscribe the host (running 4 batch workers on a
      // 1-core box measures contention, not the serial engine — the old
      // rows showed batched "4-thread" throughput BELOW 1-thread).
      const int effective =
          std::min(num_threads, static_cast<int>(hardware));
      EngineBatch batch(effective);
      for (int b = 0; b < batch_size; ++b) batch.Add(w, model, config);
      const int warm = std::max(1, wc.warmup / batch_size);
      const int iters = std::max(1, wc.iters / batch_size);
      batch.StepAll(warm);
      double best_seconds = 0.0;
      for (int rep = 0; rep < 3; ++rep) {
        const auto start = std::chrono::steady_clock::now();
        batch.StepAll(iters);
        const auto stop = std::chrono::steady_clock::now();
        const double seconds =
            std::chrono::duration<double>(stop - start).count();
        if (rep == 0 || seconds < best_seconds) best_seconds = seconds;
      }
      const double rate = batch_size * iters / best_seconds;
      if (num_threads == 1) batch_serial_rate = rate;
      const bool row_clamped = num_threads > static_cast<int>(hardware);
      if (row_clamped) {
        std::printf("  batch[%d], num_threads=%-8d %12.0f steps/sec  "
                    "(clamped, no scaling claim)\n",
                    batch_size, num_threads, rate);
      } else {
        std::printf("  batch[%d], num_threads=%-8d %12.0f steps/sec  (%.2fx "
                    "1-thread)\n",
                    batch_size, num_threads, rate,
                    rate / batch_serial_rate);
      }
      bench::JsonValue row =
          bench::JsonValue::Object()
              .Add("num_threads", bench::JsonValue::Number(num_threads))
              .Add("effective_threads", bench::JsonValue::Number(effective))
              .Add("batch_size", bench::JsonValue::Number(batch_size))
              .Add("clamped", bench::JsonValue::Bool(row_clamped))
              .Add("steps_per_sec", bench::JsonValue::Number(rate));
      if (!row_clamped) {
        row.Add("speedup_vs_1thread",
                bench::JsonValue::Number(rate / batch_serial_rate));
      }
      batches.Push(std::move(row));
    }

    results.Push(
        bench::JsonValue::Object()
            .Add("workload", bench::JsonValue::String(wc.name))
            .Add("tasks", bench::JsonValue::Number(
                              static_cast<double>(w.task_count())))
            .Add("subtasks", bench::JsonValue::Number(
                                 static_cast<double>(w.subtask_count())))
            .Add("scalar_steps_per_sec", bench::JsonValue::Number(scalar_rate))
            .Add("fused_steps_per_sec",
                 bench::JsonValue::Number(fused_serial_rate))
            .Add("single_thread_speedup",
                 bench::JsonValue::Number(fused_serial_rate / scalar_rate))
            .Add("threads", std::move(threads))
            .Add("batched", std::move(batches)));
  }

  bench::JsonValue root =
      bench::BenchReportRoot("throughput", "steps_per_sec", quick);
  root.Add("hardware_concurrency",
           bench::JsonValue::Number(static_cast<double>(hardware)));
  root.Add("clamped", bench::JsonValue::Bool(clamped));
  root.Add("results", std::move(results));
  return bench::EmitBenchReport("BENCH_throughput.json", root);
}
