// Ablation: the two tractable utility variants of Sec. 3.2 (sum vs
// path-weighted) and the Sec. 5.2 claim that both converge equivalently,
// with the critical path landing within 1% of the critical time.  Also
// sweeps the utility *shape* (linear / quadratic / neg-exponential) as an
// extension beyond the paper's linear-only experiments.
#include <cstdio>

#include "bench_util.h"
#include "core/engine.h"
#include "model/utility.h"
#include "workloads/paper.h"

using namespace lla;

namespace {

void RunVariant(const char* label, const Workload& w, LlaConfig config) {
  LatencyModel model(w);
  config.record_history = true;
  LlaEngine engine(w, model, config);
  const RunResult run = engine.Run(12000);
  double worst_gap = 0.0;
  for (const TaskInfo& task : w.tasks()) {
    const double crit = CriticalPathLatency(w, task.id, engine.latencies());
    worst_gap =
        std::max(worst_gap, 1.0 - crit / task.critical_time_ms);
  }
  std::printf("%-34s conv=%-3s iters=%6d utility=%10.2f feas=%-3s "
              "max crit-path gap=%.3f%%\n",
              label, run.converged ? "yes" : "no", run.iterations,
              run.final_utility,
              run.final_feasibility.feasible ? "yes" : "no",
              100.0 * worst_gap);
}

}  // namespace

int main() {
  bench::PrintHeader(
      "bench_ablation_utility — sum vs path-weighted, utility shapes",
      "Sec. 3.2 / 5.2 (variants; critical path within 1% of critical time)",
      "both variants converge to feasible optima; critical paths within ~1% "
      "of the deadlines; nonlinear concave shapes also converge (extension)");

  auto workload = MakeSimWorkload();
  const Workload& w = workload.value();

  std::printf("\nvariant ablation (linear utility f = 2C - x):\n");
  {
    LlaConfig config = bench::PaperLlaConfig();
    config.gamma0 = 3.0;
    config.solver.variant = UtilityVariant::kPathWeighted;
    RunVariant("path-weighted", w, config);
  }
  {
    LlaConfig config = bench::PaperLlaConfig();
    config.gamma0 = 3.0;
    config.solver.variant = UtilityVariant::kSum;
    RunVariant("sum", w, config);
  }

  std::printf("\nutility shape extension (path-weighted):\n");
  // Rebuild the workload with different concave shapes per task.
  struct ShapeCase {
    const char* label;
    UtilityPtr (*make)(double critical);
  };
  const ShapeCase shapes[] = {
      {"linear f = 2C - x",
       [](double critical) { return MakePaperSimUtility(critical); }},
      {"quadratic f = 2C - x^2/C",
       [](double critical) -> UtilityPtr {
         return std::make_shared<PowerUtility>(2.0 * critical,
                                               1.0 / critical, 2.0);
       }},
      {"neg-exp f = 2C - e^(x/3C)*3C",
       [](double critical) -> UtilityPtr {
         // A rate of 1/C is numerically explosive over the solver's full
         // latency bracket (slope ~ e^40 far from the optimum destabilizes
         // the price dynamics); 1/(3C) keeps the same qualitative shape.
         return std::make_shared<NegExpUtility>(2.0 * critical,
                                                1.0 / (3.0 * critical));
       }},
      {"inelastic plateau to 0.6C",
       [](double critical) -> UtilityPtr {
         return std::make_shared<InelasticUtility>(critical, 0.6 * critical,
                                                   2.0 / critical);
       }},
  };
  for (const ShapeCase& shape : shapes) {
    SimWorkloadOptions options;
    auto base = MakeSimWorkload(options);
    // Replace each task's utility with the shaped one.  Rebuilding from
    // specs keeps validation in force.
    const Workload& proto = base.value();
    std::vector<ResourceSpec> resources;
    for (const ResourceInfo& resource : proto.resources()) {
      resources.push_back({resource.name, resource.kind, resource.capacity,
                           resource.lag_ms});
    }
    std::vector<TaskSpec> tasks;
    for (const TaskInfo& task : proto.tasks()) {
      TaskSpec spec;
      spec.name = task.name;
      spec.critical_time_ms = task.critical_time_ms;
      spec.utility = shape.make(task.critical_time_ms);
      spec.trigger = task.trigger;
      spec.edges = task.dag.edges();
      for (SubtaskId sid : task.subtasks) {
        const SubtaskInfo& sub = proto.subtask(sid);
        spec.subtasks.push_back(
            {sub.name, sub.resource, sub.wcet_ms, sub.min_share});
      }
      tasks.push_back(std::move(spec));
    }
    auto shaped = Workload::Create(std::move(resources), std::move(tasks));
    if (!shaped.ok()) {
      std::printf("%-34s workload error: %s\n", shape.label,
                  shaped.error().c_str());
      continue;
    }
    LlaConfig config = bench::PaperLlaConfig();
    config.gamma0 = 3.0;
    RunVariant(shape.label, shaped.value(), config);
  }
  return 0;
}
