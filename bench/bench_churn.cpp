// High-churn arrival/departure storm bench (DESIGN.md §7.9): a scripted
// stream of task joins (ProbeAll admission-gated, bursts probed as one
// EngineBatch-backed batch), task leaves and WCET corrections applied
// against ONE live engine via the ChurnDriver.
//
// Two phases:
//   1. Throughput — ApplyAll over the whole script, timed end-to-end
//      (admission probes included): sustained mutations/sec, mean subtask
//      solves per mutation, and the p50/p90/p99 of per-mutation
//      re-convergence iterations.
//   2. Warm-vs-cold gate — the same script replayed mutation by mutation on
//      a fresh driver; after every applied LEAVE a cold dense engine solves
//      the post-leave system from scratch and the ratio cold/warm subtask
//      solves must stay >= 1.0.  This pins the selective re-prime fix: the
//      old mapped warm start was 8x WORSE than cold on exactly this path
//      (BENCH_convergence.json at 9f3ad3d recorded solve_ratio 0.12), and
//      the gate fails the bench (exit 1) if the regression ever returns.
//
// Writes BENCH_churn.json for the perf trajectory.
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench_util.h"
#include "common/stats.h"
#include "core/engine.h"
#include "runtime/churn.h"
#include "workloads/random.h"
#include "workloads/transform.h"

using namespace lla;
using runtime::ChurnConfig;
using runtime::ChurnDriver;
using runtime::ChurnKind;
using runtime::ChurnMutation;
using runtime::ChurnRecord;
using runtime::ChurnScriptConfig;

namespace {

constexpr int kMaxIterations = 12000;

// The proven converging configuration bench_convergence uses (adaptive
// steps, default multiplier cap) — churn is about re-convergence work.
LlaConfig ConvergingConfig() {
  LlaConfig config;
  config.step_policy = StepPolicyKind::kAdaptive;
  config.gamma0 = 3.0;
  config.record_history = false;
  return config;
}

ChurnConfig DriverConfig() {
  ChurnConfig config;
  config.lla = ConvergingConfig();
  config.lla.active_set.enabled = true;
  config.max_iterations = kMaxIterations;
  config.min_tasks = 2;
  config.admission.lla = config.lla;
  config.admission.max_iterations = kMaxIterations;
  config.admission.probe_threads = 4;
  return config;
}

bench::JsonValue QuantilesJson(const SampleQuantile& q) {
  return bench::JsonValue::Object()
      .Add("p50", bench::JsonValue::Number(q.Value(0.50)))
      .Add("p90", bench::JsonValue::Number(q.Value(0.90)))
      .Add("p99", bench::JsonValue::Number(q.Value(0.99)))
      .Add("max", bench::JsonValue::Number(q.Value(1.0)));
}

}  // namespace

int main(int argc, char** argv) {
  bool quick = false;
  std::uint64_t seed = 7;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) quick = true;
    if (std::strncmp(argv[i], "--seed=", 7) == 0) {
      seed = static_cast<std::uint64_t>(std::atoll(argv[i] + 7));
    }
  }

  bench::PrintHeader(
      "bench_churn — arrival/departure storms against a live engine",
      "high-churn serving layer: structural warm starts + ProbeAll admission",
      "sustained mutations/sec with every leave's warm restart no worse than "
      "a cold solve (ratio >= 1.0)");

  // Base system: a schedulable random workload with admission headroom and
  // a SPARSE task->resource graph (24 resources, <= 4 subtasks per task) so
  // the dirty closure of a departing task stays local — the case where the
  // selective re-prime keeps untouched tasks' prices bit-identical and the
  // warm restart beats cold instead of merely matching it.
  RandomWorkloadConfig base_config;
  base_config.seed = seed;
  base_config.num_resources = 24;
  base_config.num_tasks = 12;
  base_config.min_subtasks = 2;
  base_config.max_subtasks = 4;
  base_config.target_utilization = 0.6;
  auto base = MakeRandomWorkload(base_config);
  if (!base.ok()) {
    std::printf("workload error: %s\n", base.error().c_str());
    return 1;
  }
  const WorkloadSpecs specs = ExtractSpecs(base.value());

  ChurnScriptConfig script_config;
  script_config.seed = seed;
  script_config.mutations = quick ? 40 : 200;
  script_config.num_resources =
      static_cast<int>(specs.resources.size());
  auto script = runtime::MakeChurnScript(script_config);
  if (!script.ok()) {
    std::printf("script error: %s\n", script.error().c_str());
    return 1;
  }

  // --- Phase 1: throughput (bursts of joins probed as one batch).
  auto throughput_driver =
      ChurnDriver::Create(specs.resources, specs.tasks, DriverConfig());
  if (!throughput_driver.ok()) {
    std::printf("driver error: %s\n", throughput_driver.error().c_str());
    return 1;
  }
  const auto start = std::chrono::steady_clock::now();
  const std::vector<ChurnRecord> records =
      throughput_driver.value().ApplyAll(script.value());
  const auto stop = std::chrono::steady_clock::now();
  const double wall_ms =
      std::chrono::duration<double, std::milli>(stop - start).count();

  std::size_t applied = 0, joins = 0, joins_admitted = 0, leaves = 0,
              perturbs = 0, structural_unconverged = 0, cold_fallbacks = 0;
  std::uint64_t total_solves = 0;
  SampleQuantile reconv_iters, reconv_structural, reconv_perturb;
  for (const ChurnRecord& record : records) {
    if (record.kind == ChurnKind::kJoin) {
      ++joins;
      if (record.applied) ++joins_admitted;
    } else if (record.kind == ChurnKind::kLeave) {
      ++leaves;
    } else {
      ++perturbs;
    }
    if (!record.applied) continue;
    ++applied;
    if (record.note == "cold restart after warm stall") ++cold_fallbacks;
    total_solves += record.subtask_solves;
    reconv_iters.Add(static_cast<double>(record.iterations));
    if (record.kind == ChurnKind::kWcetPerturb) {
      reconv_perturb.Add(static_cast<double>(record.iterations));
    } else {
      reconv_structural.Add(static_cast<double>(record.iterations));
      if (!record.converged) ++structural_unconverged;
    }
  }
  const double mutations_per_sec =
      wall_ms > 0.0 ? static_cast<double>(records.size()) / (wall_ms / 1e3)
                    : 0.0;
  const double solves_per_mutation =
      applied > 0 ? static_cast<double>(total_solves) /
                        static_cast<double>(applied)
                  : 0.0;

  std::printf("\nscript: %zu mutations (%zu joins, %zu leaves, %zu wcet) "
              "against %zu initial tasks\n",
              records.size(), joins, leaves, perturbs, specs.tasks.size());
  std::printf("  wall %.1f ms  ->  %.1f sustained mutations/sec "
              "(admission probes included)\n",
              wall_ms, mutations_per_sec);
  std::printf("  %zu applied (%zu joins admitted of %zu), "
              "%.1f subtask solves per applied mutation\n",
              applied, joins_admitted, joins, solves_per_mutation);
  std::printf("  re-convergence iterations: p50 %.0f  p90 %.0f  p99 %.0f  "
              "max %.0f\n",
              reconv_iters.Value(0.5), reconv_iters.Value(0.9),
              reconv_iters.Value(0.99), reconv_iters.Value(1.0));
  std::printf("    structural (join/leave): p50 %.0f  p99 %.0f   "
              "wcet corrections: p50 %.0f  p99 %.0f\n",
              reconv_structural.Value(0.5), reconv_structural.Value(0.99),
              reconv_perturb.Value(0.5), reconv_perturb.Value(0.99));
  std::printf("  final system: %zu tasks, %zu subtasks\n",
              throughput_driver.value().workload().task_count(),
              throughput_driver.value().workload().subtask_count());
  if (cold_fallbacks > 0) {
    std::printf("  %zu warm continuations stalled and fell back to a cold "
                "restart (charged to the record)\n",
                cold_fallbacks);
  }
  if (structural_unconverged > 0) {
    std::printf("  WARN: %zu structural mutations did not re-converge "
                "within %d iterations\n",
                structural_unconverged, kMaxIterations);
  }

  // --- Phase 2: warm-vs-cold gate on every applied leave.
  auto gate_driver =
      ChurnDriver::Create(specs.resources, specs.tasks, DriverConfig());
  if (!gate_driver.ok()) {
    std::printf("driver error: %s\n", gate_driver.error().c_str());
    return 1;
  }
  ChurnDriver& driver = gate_driver.value();
  std::printf("\nwarm-vs-cold gate (cold dense solves / warm solves per "
              "applied leave):\n");
  bench::JsonValue gate_rows = bench::JsonValue::Array();
  double min_ratio = -1.0;
  std::size_t gated_leaves = 0;
  for (std::size_t m = 0; m < script.value().size(); ++m) {
    const ChurnRecord record = driver.Apply(script.value()[m]);
    if (record.kind != ChurnKind::kLeave || !record.applied) continue;
    LlaConfig dense = DriverConfig().lla;
    dense.active_set.enabled = false;
    LlaEngine cold(driver.workload(), driver.model(), dense);
    const RunResult cold_run = cold.Run(kMaxIterations);
    // Both sides charge the same structural prime (one dense solve of the
    // post-leave workload) — the accounting bench_convergence uses.
    const std::uint64_t cold_solves =
        cold_run.subtask_solves + driver.workload().subtask_count();
    const double ratio = record.subtask_solves > 0
                             ? static_cast<double>(cold_solves) /
                                   static_cast<double>(record.subtask_solves)
                             : 0.0;
    if (min_ratio < 0.0 || ratio < min_ratio) min_ratio = ratio;
    ++gated_leaves;
    std::printf("  mutation %3zu: cold %8llu  warm %8llu  ratio %.2f\n", m,
                static_cast<unsigned long long>(cold_solves),
                static_cast<unsigned long long>(record.subtask_solves),
                ratio);
    gate_rows.Push(
        bench::JsonValue::Object()
            .Add("mutation", bench::JsonValue::Number(static_cast<double>(m)))
            .Add("cold_solves",
                 bench::JsonValue::Number(static_cast<double>(cold_solves)))
            .Add("warm_solves", bench::JsonValue::Number(static_cast<double>(
                                    record.subtask_solves)))
            .Add("ratio", bench::JsonValue::Number(ratio)));
  }
  const bool meets_structural_warm = min_ratio < 0.0 || min_ratio >= 1.0;
  std::printf("gate over %zu leaves: min ratio %.2f  (>= 1.0): %s\n",
              gated_leaves, min_ratio,
              meets_structural_warm ? "PASS" : "FAIL");

  bench::JsonValue root =
      bench::BenchReportRoot("churn", "mutations_per_sec", quick);
  root.Add("seed", bench::JsonValue::Number(static_cast<double>(seed)));
  root.Add("mutations",
           bench::JsonValue::Number(static_cast<double>(records.size())));
  root.Add("applied", bench::JsonValue::Number(static_cast<double>(applied)));
  root.Add("joins_attempted",
           bench::JsonValue::Number(static_cast<double>(joins)));
  root.Add("joins_admitted",
           bench::JsonValue::Number(static_cast<double>(joins_admitted)));
  root.Add("leaves", bench::JsonValue::Number(static_cast<double>(leaves)));
  root.Add("wcet_perturbs",
           bench::JsonValue::Number(static_cast<double>(perturbs)));
  root.Add("wall_ms", bench::JsonValue::Number(wall_ms));
  root.Add("mutations_per_sec", bench::JsonValue::Number(mutations_per_sec));
  root.Add("solves_per_mutation",
           bench::JsonValue::Number(solves_per_mutation));
  root.Add("reconvergence_iterations", QuantilesJson(reconv_iters));
  root.Add("reconvergence_iterations_structural",
           QuantilesJson(reconv_structural));
  root.Add("reconvergence_iterations_wcet", QuantilesJson(reconv_perturb));
  root.Add("structural_unconverged",
           bench::JsonValue::Number(
               static_cast<double>(structural_unconverged)));
  root.Add("cold_restart_fallbacks",
           bench::JsonValue::Number(static_cast<double>(cold_fallbacks)));
  root.Add("min_leave_warm_vs_cold_ratio",
           bench::JsonValue::Number(min_ratio));
  root.Add("meets_structural_warm",
           bench::JsonValue::Bool(meets_structural_warm));
  root.Add("leave_gate", std::move(gate_rows));
  if (bench::EmitBenchReport("BENCH_churn.json", root) != 0) return 1;
  return (meets_structural_warm && structural_unconverged == 0) ? 0 : 1;
}
