// Reproduces Figure 8 / Sec. 6: the prototype experiment with online model
// error correction, on the discrete-event substrate.
//
// 4 linear tasks x 3 subtasks over 3 CPUs (capacity 0.9 each; 0.1 modeled
// as an always-backlogged garbage-collector flow).  Fast tasks: WCET 5 ms,
// 40/s, C=105 ms.  Slow tasks: WCET 13 ms, 10/s, C=800 ms.  f(lat) = -lat.
//
// Paper observations to reproduce in shape:
//   * uncorrected optimizer holds fast shares above their sustainable
//     minimum to meet the 105 ms deadline under the conservative model
//     (paper observed 0.26; the exact theoretical equilibrium is 0.2857);
//   * once error correction learns the (negative) prediction error, fast
//     shares drop to the 0.2 minimum and slow shares absorb the surplus
//     (0.25); paper: -23% / +32%.
#include <cstdio>
#include <cstring>

#include "bench_util.h"
#include "correction/closed_loop.h"
#include "obs/trace.h"
#include "workloads/paper.h"

using namespace lla;
using namespace lla::correction;

int main(int argc, char** argv) {
  std::string trace_path = "BENCH_fig8_prototype.jsonl";
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--trace-out=", 12) == 0) {
      trace_path = argv[i] + 12;
    } else {
      std::fprintf(stderr, "usage: %s [--trace-out=path.jsonl]\n", argv[0]);
      return 2;
    }
  }

  bench::PrintHeader(
      "bench_fig8_prototype — online model error correction",
      "Figure 8 / Sec. 6.4 (system experiment with model error correction)",
      "fast share: ~0.286 uncorrected -> 0.20 corrected (paper 0.26 -> "
      "0.20); slow share: ~0.164 -> 0.25 (paper 0.19 -> 0.25); errors "
      "negative, mean-stable after convergence");

  auto workload = MakePrototypeWorkload();
  if (!workload.ok()) {
    std::printf("workload error: %s\n", workload.error().c_str());
    return 1;
  }
  const Workload& w = workload.value();

  ClosedLoopConfig config;
  config.lla = bench::PaperLlaConfig();
  config.lla.gamma0 = 3.0;
  config.lla.record_history = false;
  config.sim.duration_ms = 20000.0;
  config.epochs = 16;
  config.enable_correction_at_epoch = 5;
  ClosedLoop loop(w, config);
  const auto records = loop.Run();

  // The Figure 8 series (per-epoch shares, prediction errors, measured vs
  // predicted latency) stream to the trace file as "epoch" events instead of
  // an ad-hoc table; the console keeps only the derived summary.
  obs::JsonlTraceSink sink(trace_path);
  if (!sink.ok()) {
    std::fprintf(stderr, "cannot open %s for writing\n", trace_path.c_str());
    return 1;
  }
  obs::RunInfo info;
  info.label = "fig8 additive correction";
  info.resource_count = w.resource_count();
  info.path_count = w.path_count();
  sink.OnRunBegin(info);
  for (const auto& r : records) {
    obs::TraceEvent event;
    event.type = "epoch";
    event.fields = {{"epoch", static_cast<double>(r.epoch)},
                    {"correction_active", r.correction_active ? 1.0 : 0.0},
                    {"fast_share", r.shares[0]},
                    {"slow_share", r.shares[6]},
                    {"fast_error_ms", r.errors_ms[0]},
                    {"slow_error_ms", r.errors_ms[6]},
                    {"fast_measured_ms", r.measured_ms[0]},
                    {"fast_predicted_ms", r.predicted_ms[0]}};
    sink.OnEvent(event);
  }
  sink.OnRunEnd();

  std::printf("\n(one epoch = one 20 s observation window; correction "
              "enabled at epoch %d; per-epoch series written to %s)\n",
              config.enable_correction_at_epoch, trace_path.c_str());

  const auto& before = records[config.enable_correction_at_epoch - 1];
  const auto& after = records.back();
  const double fast_change =
      100.0 * (after.shares[0] - before.shares[0]) / before.shares[0];
  const double slow_change =
      100.0 * (after.shares[6] - before.shares[6]) / before.shares[6];
  std::printf("\nsummary:\n");
  std::printf("  fast subtask share: %.4f -> %.4f  (%+.0f%%; paper: 0.26 -> "
              "0.20, -23%%)\n",
              before.shares[0], after.shares[0], fast_change);
  std::printf("  slow subtask share: %.4f -> %.4f  (%+.0f%%; paper: 0.19 -> "
              "0.25, +32%%)\n",
              before.shares[6], after.shares[6], slow_change);
  std::printf("  fast tasks end at their sustainable minimum share "
              "(0.2 = 40/s x 5 ms), as in the paper.\n");

  // Extension ablation: additive correction (the paper's Sec. 6.3) vs full
  // online model fitting (RLS over (share, latency) pairs).  The fitter
  // learns the true effective work, under which the fast deadline no longer
  // binds and the optimizer saturates the CPUs at a distinct equilibrium.
  {
    ClosedLoopConfig fitted_config = config;
    fitted_config.mode = CorrectionMode::kFitted;
    fitted_config.fitter.min_samples = 2;
    fitted_config.fitter.min_regressor_spread = 0.02;
    ClosedLoop fitted_loop(w, fitted_config);
    const auto fitted_records = fitted_loop.Run();
    const auto& fit_after = fitted_records.back();
    const auto model_error = [](const EpochRecord& r, int s) {
      return 100.0 * (r.predicted_ms[s] - r.measured_ms[s]) /
             r.measured_ms[s];
    };
    std::printf("\ncorrection-strategy ablation (final epoch):\n");
    std::printf("%-22s %10s %10s %18s %18s\n", "strategy", "fast sh",
                "slow sh", "fast pred-vs-meas", "slow pred-vs-meas");
    std::printf("%-22s %10.4f %10.4f %17.1f%% %17.1f%%\n",
                "additive (paper)", after.shares[0], after.shares[6],
                model_error(after, 0), model_error(after, 6));
    std::printf("%-22s %10.4f %10.4f %17.1f%% %17.1f%%\n",
                "fitted (extension)", fit_after.shares[0],
                fit_after.shares[6], model_error(fit_after, 0),
                model_error(fit_after, 6));
    std::printf("(the fitted model predicts measured latency almost "
                "exactly, so the optimizer\n stops over-protecting the fast "
                "tasks and balances marginal latencies instead)\n");
  }

  // Deadline check under the corrected allocation: simulate once more and
  // report the end-to-end percentiles.
  sim::SimConfig sim_config = config.sim;
  sim_config.seed = 999;
  sim::SystemSimulator simulator(w, sim_config);
  const sim::SimResult result = simulator.Run(after.shares);
  std::printf("\nmeasured end-to-end latency under the corrected allocation "
              "(p50 / p95 / p99 vs critical time):\n");
  for (const TaskInfo& task : w.tasks()) {
    const auto& q = result.task_latencies[task.id.value()];
    std::printf("  %-8s %7.1f / %7.1f / %7.1f ms  (C = %.0f ms)\n",
                task.name.c_str(), q.Value(0.50), q.Value(0.95),
                q.Value(0.99), task.critical_time_ms);
  }
  return 0;
}
