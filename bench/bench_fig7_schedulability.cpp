// Reproduces Figure 7: using LLA to test the schedulability of a workload.
//
// The 6-task workload keeps the ORIGINAL critical times (unlike Figure 6's
// scaled ones), which makes it unschedulable: utility and share sums fail
// to converge and the critical-time constraints stay violated (the paper
// observes critical paths at 1.75-2.41x the constraints).
#include <cstdio>

#include "bench_util.h"
#include "core/engine.h"
#include "core/schedulability.h"
#include "workloads/paper.h"

using namespace lla;

int main() {
  bench::PrintHeader(
      "bench_fig7_schedulability — LLA as a schedulability test",
      "Figure 7 (utility and share sums on the unschedulable 6-task "
      "workload)",
      "no convergence; share sums and utility keep fluctuating; critical "
      "paths persistently above the critical times -> verdict "
      "'unschedulable'");

  auto workload = MakeScaledSimWorkload(2, /*scale_critical_times=*/false);
  if (!workload.ok()) {
    std::printf("workload error: %s\n", workload.error().c_str());
    return 1;
  }
  const Workload& w = workload.value();
  LatencyModel model(w);

  // Trace run (the figure's series).
  {
    LlaConfig config = bench::PaperLlaConfig();
    config.convergence.rel_tol = 1e-9;
    LlaEngine engine(w, model, config);
    std::printf("\n%6s %14s %16s %16s\n", "iter", "utility",
                "max share sum", "max path ratio");
    for (int i = 1; i <= 1500; ++i) {
      const IterationStats stats = engine.Step();
      if (i <= 10 || i % 100 == 0) {
        double max_share = 0.0;
        const FeasibilityReport report = engine.Feasibility();
        for (double sum : report.resource_share_sums) {
          max_share = std::max(max_share, sum);
        }
        std::printf("%6d %14.2f %16.4f %16.4f\n", i, stats.total_utility,
                    max_share, stats.max_path_ratio);
      }
    }
    std::printf("\nper-task critical-path / critical-time at the last "
                "iterate (paper: 1.75-2.41):\n");
    for (const TaskInfo& task : w.tasks()) {
      std::printf("  %-22s %.3f\n", task.name.c_str(),
                  CriticalPathLatency(w, task.id, engine.latencies()) /
                      task.critical_time_ms);
    }
  }

  // Verdict from the tester.
  SchedulabilityConfig tester_config;
  tester_config.lla = bench::PaperLlaConfig();
  tester_config.max_iterations = 1500;
  SchedulabilityTester tester(w, model, tester_config);
  const SchedulabilityReport report = tester.Test();
  std::printf("\nverdict: %s\n  %s\n  trailing mean path ratio %.3f, "
              "trailing mean resource excess %.3f\n",
              ToString(report.verdict), report.explanation.c_str(),
              report.mean_max_path_ratio, report.mean_max_resource_excess);

  // Contrast: the same replication with scaled critical times is
  // schedulable (the Figure 6 configuration).
  auto scaled = MakeScaledSimWorkload(2, /*scale_critical_times=*/true);
  LatencyModel scaled_model(scaled.value());
  SchedulabilityConfig ok_config;
  ok_config.lla = bench::PaperLlaConfig();
  ok_config.lla.gamma0 = 3.0;
  ok_config.max_iterations = 25000;
  SchedulabilityTester ok_tester(scaled.value(), scaled_model, ok_config);
  const SchedulabilityReport ok_report = ok_tester.Test();
  std::printf("\ncontrol (scaled critical times): %s — %s\n",
              ToString(ok_report.verdict), ok_report.explanation.c_str());
  return 0;
}
