// Measures convergence WORK, not per-step throughput: how many subtask
// solves (and how much wall time) the optimizer needs to reach convergence,
// comparing
//   * a cold dense run (active_set.enabled = false, every subtask solved
//     every step) against
//   * a cold active-set run (same trajectory bit-for-bit, but clean tasks
//     skip their solves) and
//   * warm restarts after realistic online events — a single subtask's WCET
//     estimate moving (error correction), a task leaving the system, and a
//     resource capacity change — where WarmStart carries the previous
//     optimum's prices and the active set prunes the re-convergence to the
//     subtasks a changed price bit can actually reach.
//
// This is the paper's online story (Sec. 1 "adapts to both workload and
// resource variations") made quantitative: the acceptance bar is that the
// warm restart after a single-subtask WCET perturbation performs at least
// 5x fewer subtask solves than re-running the dense optimizer from cold.
//
// Accounting: LlaEngine's Reset/WarmStart prime (one dense solve of every
// subtask) is not part of RunResult::subtask_solves, so every scenario here
// adds workload.subtask_count() once — cold and warm runs pay the same
// prime, keeping the comparison symmetric.
//
// Writes BENCH_convergence.json for the perf trajectory.
#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench_util.h"
#include "core/engine.h"
#include "workloads/paper.h"
#include "workloads/random.h"
#include "workloads/transform.h"

using namespace lla;

namespace {

constexpr int kMaxIterations = 12000;

struct ConvergenceRun {
  bool converged = false;
  int iterations = 0;
  std::uint64_t subtask_solves = 0;  ///< includes the prime
  double wall_ms = 0.0;
  double final_utility = 0.0;
};

/// Runs `engine` to convergence and charges the prime on top.
ConvergenceRun RunToConvergence(LlaEngine& engine, std::size_t prime_solves) {
  const auto start = std::chrono::steady_clock::now();
  const RunResult result = engine.Run(kMaxIterations);
  const auto stop = std::chrono::steady_clock::now();
  ConvergenceRun run;
  run.converged = result.converged;
  run.iterations = result.iterations;
  run.subtask_solves = prime_solves + result.subtask_solves;
  run.wall_ms = std::chrono::duration<double, std::milli>(stop - start).count();
  run.final_utility = result.final_utility;
  return run;
}

// Not PaperLlaConfig: its adaptive_max_multiplier = 8.0 is tuned for the
// figure reproductions' settling speed and leaves a persistent utility
// oscillation that never trips the convergence test.  This bench is about
// work-to-converge, so it uses the proven converging configuration from the
// warm-start tests (adaptive steps, default multiplier).
LlaConfig ConvergingConfig() {
  LlaConfig config;
  config.step_policy = StepPolicyKind::kAdaptive;
  config.gamma0 = 3.0;
  config.record_history = false;
  return config;
}

LlaConfig DenseConfig() {
  LlaConfig config = ConvergingConfig();
  config.active_set.enabled = false;
  return config;
}

LlaConfig ActiveConfig() {
  LlaConfig config = ConvergingConfig();
  config.active_set.enabled = true;
  return config;
}

void PrintRun(const char* label, const ConvergenceRun& run) {
  std::printf("  %-26s %8llu subtask solves  %5d iters  %8.2f ms  "
              "utility %.4f%s\n",
              label, static_cast<unsigned long long>(run.subtask_solves),
              run.iterations, run.wall_ms, run.final_utility,
              run.converged ? "" : "  [DID NOT CONVERGE]");
}

bench::JsonValue RunJson(const ConvergenceRun& run) {
  return bench::JsonValue::Object()
      .Add("converged", bench::JsonValue::Bool(run.converged))
      .Add("iterations",
           bench::JsonValue::Number(static_cast<double>(run.iterations)))
      .Add("subtask_solves",
           bench::JsonValue::Number(static_cast<double>(run.subtask_solves)))
      .Add("wall_ms", bench::JsonValue::Number(run.wall_ms))
      .Add("final_utility", bench::JsonValue::Number(run.final_utility));
}

/// One scenario record: cold dense baseline vs. the (warm, active) run.
bench::JsonValue ScenarioJson(const std::string& name,
                              const ConvergenceRun& cold_dense,
                              const ConvergenceRun& contender,
                              double solve_ratio) {
  return bench::JsonValue::Object()
      .Add("scenario", bench::JsonValue::String(name))
      .Add("cold_dense", RunJson(cold_dense))
      .Add("contender", RunJson(contender))
      .Add("solve_ratio", bench::JsonValue::Number(solve_ratio));
}

/// Maps the converged lambda of `workload` onto the path index space of
/// `workload` minus `removed` (mu maps 1:1 — resources are untouched).
/// Paths are ordered by task and, per task, in dag order; both orders
/// survive a task removal, so the mapping is a filtered copy.
PriceVector MapPricesWithoutTask(const Workload& workload,
                                 const PriceVector& prices, TaskId removed) {
  PriceVector mapped;
  mapped.mu = prices.mu;
  for (const TaskInfo& task : workload.tasks()) {
    if (task.id == removed) continue;
    for (PathId path : task.paths) {
      mapped.lambda.push_back(prices.lambda[path.value()]);
    }
  }
  return mapped;
}

struct ScenarioOutcome {
  double solve_ratio = 0.0;
  bool wcet = false;  ///< counts toward the 5x acceptance gate
};

void RunWorkloadCases(const std::string& name, const Workload& workload,
                      bench::JsonValue* results,
                      std::vector<ScenarioOutcome>* outcomes) {
  const std::size_t prime = workload.subtask_count();
  std::printf("\n%s: %zu tasks, %zu subtasks, %zu resources, %zu paths\n",
              name.c_str(), workload.task_count(), workload.subtask_count(),
              workload.resource_count(), workload.path_count());

  bench::JsonValue scenarios = bench::JsonValue::Array();

  // --- Cold start: dense vs. active-set on the same untouched workload.
  // Identical trajectories (bit-for-bit), so the solve counts isolate how
  // much of a from-scratch convergence is already sparse.
  LatencyModel model(workload);
  LlaEngine cold_dense_engine(workload, model, DenseConfig());
  const ConvergenceRun cold_dense = RunToConvergence(cold_dense_engine, prime);
  PrintRun("cold dense", cold_dense);

  LlaEngine cold_active_engine(workload, model, ActiveConfig());
  const ConvergenceRun cold_active = RunToConvergence(cold_active_engine, prime);
  PrintRun("cold active-set", cold_active);
  if (cold_active.final_utility != cold_dense.final_utility ||
      cold_active.iterations != cold_dense.iterations) {
    std::printf("  MISMATCH: active-set trajectory diverged from dense "
                "(utility %.17g vs %.17g)\n",
                cold_active.final_utility, cold_dense.final_utility);
    std::exit(1);
  }
  {
    const double ratio = static_cast<double>(cold_dense.subtask_solves) /
                         static_cast<double>(cold_active.subtask_solves);
    std::printf("  cold active-set does %.2fx fewer subtask solves\n", ratio);
    scenarios.Push(ScenarioJson("cold_start", cold_dense, cold_active, ratio));
    outcomes->push_back({ratio, false});
  }

  // The converged operating point every warm restart resumes from.
  const PriceVector optimum = cold_active_engine.prices();

  // --- Single-subtask WCET perturbation (the acceptance-gate scenario):
  // the error corrector refines one subtask's additive WCET error by 10us;
  // the optimum moves only slightly, so a warm restart should re-converge
  // in a handful of iterations touching few subtasks.  (Large perturbations
  // shift the optimum far enough that re-convergence costs as much as a
  // cold start on this dynamics — measured, not assumed.)
  {
    const SubtaskId victim = workload.tasks().front().subtasks.front();
    model.SetAdditiveError(victim, 0.01);

    LlaEngine warm(workload, model, ActiveConfig());
    warm.WarmStart(optimum);
    const ConvergenceRun warm_run = RunToConvergence(warm, prime);

    LlaEngine cold(workload, model, DenseConfig());
    const ConvergenceRun cold_run = RunToConvergence(cold, prime);

    model.SetAdditiveError(victim, 0.0);  // restore for later scenarios

    PrintRun("wcet cold dense", cold_run);
    PrintRun("wcet warm active", warm_run);
    const double ratio = static_cast<double>(cold_run.subtask_solves) /
                         static_cast<double>(warm_run.subtask_solves);
    std::printf("  warm restart does %.2fx fewer subtask solves "
                "(acceptance gate: >= 5x)\n", ratio);
    scenarios.Push(ScenarioJson("wcet_perturbation", cold_run, warm_run, ratio));
    outcomes->push_back({ratio, true});
  }

  // --- Task leave: the last task departs; mu carries over 1:1 and lambda
  // is filtered onto the surviving paths.
  {
    const TaskId removed(static_cast<std::uint32_t>(workload.task_count() - 1));
    auto reduced = WithoutTask(workload, removed);
    if (!reduced.ok()) {
      std::printf("  task-leave transform failed: %s\n",
                  reduced.error().c_str());
    } else {
      const Workload& w2 = reduced.value();
      LatencyModel model2(w2);
      const std::size_t prime2 = w2.subtask_count();

      LlaEngine warm(w2, model2, ActiveConfig());
      warm.WarmStart(MapPricesWithoutTask(workload, optimum, removed));
      const ConvergenceRun warm_run = RunToConvergence(warm, prime2);

      LlaEngine cold(w2, model2, DenseConfig());
      const ConvergenceRun cold_run = RunToConvergence(cold, prime2);

      PrintRun("leave cold dense", cold_run);
      PrintRun("leave warm active", warm_run);
      const double ratio = static_cast<double>(cold_run.subtask_solves) /
                           static_cast<double>(warm_run.subtask_solves);
      std::printf("  warm restart does %.2fx fewer subtask solves\n", ratio);
      scenarios.Push(ScenarioJson("task_leave", cold_run, warm_run, ratio));
      outcomes->push_back({ratio, false});
    }
  }

  // --- Capacity change: one resource loses 5% capacity (degraded mode).
  // The price spaces are unchanged, so the old optimum warm-starts directly.
  {
    const ResourceInfo& resource = workload.resources().front();
    auto shrunk =
        WithResourceCapacity(workload, resource.id, resource.capacity * 0.95);
    if (!shrunk.ok()) {
      std::printf("  capacity transform failed: %s\n", shrunk.error().c_str());
    } else {
      const Workload& w2 = shrunk.value();
      LatencyModel model2(w2);

      LlaEngine warm(w2, model2, ActiveConfig());
      warm.WarmStart(optimum);
      const ConvergenceRun warm_run = RunToConvergence(warm, prime);

      LlaEngine cold(w2, model2, DenseConfig());
      const ConvergenceRun cold_run = RunToConvergence(cold, prime);

      PrintRun("capacity cold dense", cold_run);
      PrintRun("capacity warm active", warm_run);
      const double ratio = static_cast<double>(cold_run.subtask_solves) /
                           static_cast<double>(warm_run.subtask_solves);
      std::printf("  warm restart does %.2fx fewer subtask solves\n", ratio);
      scenarios.Push(ScenarioJson("capacity_change", cold_run, warm_run, ratio));
      outcomes->push_back({ratio, false});
    }
  }

  results->Push(
      bench::JsonValue::Object()
          .Add("workload", bench::JsonValue::String(name))
          .Add("tasks", bench::JsonValue::Number(
                            static_cast<double>(workload.task_count())))
          .Add("subtasks", bench::JsonValue::Number(
                               static_cast<double>(workload.subtask_count())))
          .Add("scenarios", std::move(scenarios)));
}

}  // namespace

int main(int argc, char** argv) {
  bool quick = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) quick = true;
  }

  bench::PrintHeader(
      "bench_convergence — subtask solves and wall time to converge",
      "incremental active-set engine (dirty-tracked sparse dual iteration)",
      "warm restart after a single-subtask WCET perturbation >= 5x fewer "
      "subtask solves than a cold dense run; cold trajectories bit-identical "
      "dense vs. active");

  // Workloads must actually converge under the criterion (utility plateau +
  // feasibility + complementary slackness) or "work to converge" is
  // meaningless; the paper workload at replication 1 and the default random
  // workload are the converging cases the warm-start tests also use.
  auto paper = MakeScaledSimWorkload(1, /*scale_critical_times=*/true);
  if (!paper.ok()) {
    std::printf("workload error: %s\n", paper.error().c_str());
    return 1;
  }

  bench::JsonValue results = bench::JsonValue::Array();
  std::vector<ScenarioOutcome> outcomes;
  RunWorkloadCases("paper_3task", paper.value(), &results, &outcomes);

  if (!quick) {
    RandomWorkloadConfig random_config;
    random_config.seed = 42;
    random_config.target_utilization = 0.7;
    auto random_workload = MakeRandomWorkload(random_config);
    if (!random_workload.ok()) {
      std::printf("workload error: %s\n", random_workload.error().c_str());
      return 1;
    }
    RunWorkloadCases("random_default", random_workload.value(), &results,
                     &outcomes);
  }

  bool meets_5x = true;
  for (const ScenarioOutcome& outcome : outcomes) {
    if (outcome.wcet && outcome.solve_ratio < 5.0) meets_5x = false;
  }
  std::printf("\nacceptance gate (wcet warm restart >= 5x fewer solves): %s\n",
              meets_5x ? "PASS" : "FAIL");

  bench::JsonValue root = bench::JsonValue::Object();
  root.Add("bench", bench::JsonValue::String("convergence"));
  root.Add("unit", bench::JsonValue::String("subtask_solves_to_converge"));
  root.Add("quick", bench::JsonValue::Bool(quick));
  root.Add("meets_5x", bench::JsonValue::Bool(meets_5x));
  bench::StampMeta(&root);
  root.Add("results", std::move(results));
  const std::string json_path = "BENCH_convergence.json";
  if (bench::WriteJson(json_path, root)) {
    std::printf("wrote %s\n", json_path.c_str());
  } else {
    std::printf("failed to write %s\n", json_path.c_str());
    return 1;
  }
  return 0;
}
