// Measures convergence WORK, not per-step throughput: how many subtask
// solves (and how much wall time) the optimizer needs to reach convergence,
// comparing
//   * a cold dense run (active_set.enabled = false, every subtask solved
//     every step) against
//   * a cold active-set run (same trajectory bit-for-bit, but clean tasks
//     skip their solves) and
//   * warm restarts after realistic online events — a single subtask's WCET
//     estimate moving (error correction), a task leaving the system, and a
//     resource capacity change — where WarmStart carries the previous
//     optimum's prices and the active set prunes the re-convergence to the
//     subtasks a changed price bit can actually reach, and
//   * the accelerated price dynamics axis (DESIGN.md §7.8): plain vs.
//     heavy-ball vs. Nesterov momentum on the same workloads, cold and
//     across a warm WCET restart.  Two numbers per run: iterations to the
//     run's OWN convergence, and iterations to reach the PLAIN baseline's
//     final utility (quality-matched).  The distinction matters: momentum
//     keeps the utility moving past the plateau detector's epsilon, so an
//     accelerated run often stops later but at a measurably BETTER feasible
//     utility than plain — e.g. the paper warm restart surpasses plain's
//     final utility within a handful of iterations and then spends ~200
//     more improving on it.  Raw iterations-to-converge would book that
//     extra progress as a regression, so the divergence / regression gates
//     compare quality-matched iterations: a run DIVERGES if it never
//     reaches plain's quality or needs > 2x the plain iterations to get
//     there (exits 1 so CI fails); > 1.2x is recorded honestly as a
//     regression.  The headline acceleration gate stays on the stricter raw
//     count: at least one accelerated policy must fully converge cold in
//     >= 1.5x fewer iterations than plain on the paper workload.
//
// This is the paper's online story (Sec. 1 "adapts to both workload and
// resource variations") made quantitative: the acceptance bar is that the
// warm restart after a single-subtask WCET perturbation performs at least
// 5x fewer subtask solves than re-running the dense optimizer from cold.
//
// Accounting: LlaEngine's Reset/WarmStart prime (one dense solve of every
// subtask) is not part of RunResult::subtask_solves, so every scenario here
// adds workload.subtask_count() once — cold and warm runs pay the same
// prime, keeping the comparison symmetric.
//
// Writes BENCH_convergence.json for the perf trajectory.
#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench_util.h"
#include "core/engine.h"
#include "runtime/coordinator.h"
#include "workloads/paper.h"
#include "workloads/random.h"
#include "workloads/transform.h"

using namespace lla;

namespace {

constexpr int kMaxIterations = 12000;

struct ConvergenceRun {
  bool converged = false;
  int iterations = 0;
  std::uint64_t subtask_solves = 0;  ///< includes the prime
  double wall_ms = 0.0;
  double final_utility = 0.0;
};

/// Runs `engine` to convergence and charges the prime on top.
ConvergenceRun RunToConvergence(LlaEngine& engine, std::size_t prime_solves) {
  const auto start = std::chrono::steady_clock::now();
  const RunResult result = engine.Run(kMaxIterations);
  const auto stop = std::chrono::steady_clock::now();
  ConvergenceRun run;
  run.converged = result.converged;
  run.iterations = result.iterations;
  run.subtask_solves = prime_solves + result.subtask_solves;
  run.wall_ms = std::chrono::duration<double, std::milli>(stop - start).count();
  run.final_utility = result.final_utility;
  return run;
}

// Not PaperLlaConfig: its adaptive_max_multiplier = 8.0 is tuned for the
// figure reproductions' settling speed and leaves a persistent utility
// oscillation that never trips the convergence test.  This bench is about
// work-to-converge, so it uses the proven converging configuration from the
// warm-start tests (adaptive steps, default multiplier).
LlaConfig ConvergingConfig() {
  LlaConfig config;
  config.step_policy = StepPolicyKind::kAdaptive;
  config.gamma0 = 3.0;
  config.record_history = false;
  return config;
}

LlaConfig DenseConfig() {
  LlaConfig config = ConvergingConfig();
  config.active_set.enabled = false;
  return config;
}

LlaConfig ActiveConfig() {
  LlaConfig config = ConvergingConfig();
  config.active_set.enabled = true;
  return config;
}

void PrintRun(const char* label, const ConvergenceRun& run) {
  std::printf("  %-26s %8llu subtask solves  %5d iters  %8.2f ms  "
              "utility %.4f%s\n",
              label, static_cast<unsigned long long>(run.subtask_solves),
              run.iterations, run.wall_ms, run.final_utility,
              run.converged ? "" : "  [DID NOT CONVERGE]");
}

bench::JsonValue RunJson(const ConvergenceRun& run) {
  return bench::JsonValue::Object()
      .Add("converged", bench::JsonValue::Bool(run.converged))
      .Add("iterations",
           bench::JsonValue::Number(static_cast<double>(run.iterations)))
      .Add("subtask_solves",
           bench::JsonValue::Number(static_cast<double>(run.subtask_solves)))
      .Add("wall_ms", bench::JsonValue::Number(run.wall_ms))
      .Add("final_utility", bench::JsonValue::Number(run.final_utility));
}

/// One scenario record: cold dense baseline vs. the (warm, active) run.
bench::JsonValue ScenarioJson(const std::string& name,
                              const ConvergenceRun& cold_dense,
                              const ConvergenceRun& contender,
                              double solve_ratio) {
  return bench::JsonValue::Object()
      .Add("scenario", bench::JsonValue::String(name))
      .Add("cold_dense", RunJson(cold_dense))
      .Add("contender", RunJson(contender))
      .Add("solve_ratio", bench::JsonValue::Number(solve_ratio));
}

struct ScenarioOutcome {
  double solve_ratio = 0.0;
  bool wcet = false;        ///< counts toward the 5x acceptance gate
  bool structural = false;  ///< counts toward the warm >= cold gate
};

void RunWorkloadCases(const std::string& name, const Workload& workload,
                      bench::JsonValue* results,
                      std::vector<ScenarioOutcome>* outcomes) {
  const std::size_t prime = workload.subtask_count();
  std::printf("\n%s: %zu tasks, %zu subtasks, %zu resources, %zu paths\n",
              name.c_str(), workload.task_count(), workload.subtask_count(),
              workload.resource_count(), workload.path_count());

  bench::JsonValue scenarios = bench::JsonValue::Array();

  // --- Cold start: dense vs. active-set on the same untouched workload.
  // Identical trajectories (bit-for-bit), so the solve counts isolate how
  // much of a from-scratch convergence is already sparse.
  LatencyModel model(workload);
  LlaEngine cold_dense_engine(workload, model, DenseConfig());
  const ConvergenceRun cold_dense = RunToConvergence(cold_dense_engine, prime);
  PrintRun("cold dense", cold_dense);

  LlaEngine cold_active_engine(workload, model, ActiveConfig());
  const ConvergenceRun cold_active = RunToConvergence(cold_active_engine, prime);
  PrintRun("cold active-set", cold_active);
  if (cold_active.final_utility != cold_dense.final_utility ||
      cold_active.iterations != cold_dense.iterations) {
    std::printf("  MISMATCH: active-set trajectory diverged from dense "
                "(utility %.17g vs %.17g)\n",
                cold_active.final_utility, cold_dense.final_utility);
    std::exit(1);
  }
  {
    const double ratio = static_cast<double>(cold_dense.subtask_solves) /
                         static_cast<double>(cold_active.subtask_solves);
    std::printf("  cold active-set does %.2fx fewer subtask solves\n", ratio);
    scenarios.Push(ScenarioJson("cold_start", cold_dense, cold_active, ratio));
    outcomes->push_back({ratio, false});
  }

  // The converged operating point every warm restart resumes from.
  const PriceVector optimum = cold_active_engine.prices();

  // --- Single-subtask WCET perturbation (the acceptance-gate scenario):
  // the error corrector refines one subtask's additive WCET error by 10us;
  // the optimum moves only slightly, so a warm restart should re-converge
  // in a handful of iterations touching few subtasks.  (Large perturbations
  // shift the optimum far enough that re-convergence costs as much as a
  // cold start on this dynamics — measured, not assumed.)
  {
    const SubtaskId victim = workload.tasks().front().subtasks.front();
    model.SetAdditiveError(victim, 0.01);

    LlaEngine warm(workload, model, ActiveConfig());
    warm.WarmStart(optimum);
    const ConvergenceRun warm_run = RunToConvergence(warm, prime);

    LlaEngine cold(workload, model, DenseConfig());
    const ConvergenceRun cold_run = RunToConvergence(cold, prime);

    model.SetAdditiveError(victim, 0.0);  // restore for later scenarios

    PrintRun("wcet cold dense", cold_run);
    PrintRun("wcet warm active", warm_run);
    const double ratio = static_cast<double>(cold_run.subtask_solves) /
                         static_cast<double>(warm_run.subtask_solves);
    std::printf("  warm restart does %.2fx fewer subtask solves "
                "(acceptance gate: >= 5x)\n", ratio);
    scenarios.Push(ScenarioJson("wcet_perturbation", cold_run, warm_run, ratio));
    outcomes->push_back({ratio, true});
  }

  // --- Task leave: the last task departs.  WarmStartStructural remaps the
  // old optimum internally (mu 1:1, lambda filtered onto the surviving
  // paths) and applies the selective re-prime policy: closure resources'
  // stale mu is re-seeded so the warm restart no longer pays the
  // slow-decay penalty that used to make this scenario 8x WORSE than cold
  // (the structural gate below keeps it >= 1.0).
  {
    const TaskId removed(static_cast<std::uint32_t>(workload.task_count() - 1));
    auto reduced = WithoutTask(workload, removed);
    if (!reduced.ok()) {
      std::printf("  task-leave transform failed: %s\n",
                  reduced.error().c_str());
    } else {
      const Workload& w2 = reduced.value();
      LatencyModel model2(w2);
      const std::size_t prime2 = w2.subtask_count();

      LlaEngine warm(w2, model2, ActiveConfig());
      const Status seeded = warm.WarmStartStructural(
          workload, optimum, StructuralChange::TaskLeave(removed));
      if (!seeded.ok()) {
        std::printf("  structural warm start failed: %s\n",
                    seeded.error().c_str());
        std::exit(1);
      }
      const ConvergenceRun warm_run = RunToConvergence(warm, prime2);

      LlaEngine cold(w2, model2, DenseConfig());
      const ConvergenceRun cold_run = RunToConvergence(cold, prime2);

      PrintRun("leave cold dense", cold_run);
      PrintRun("leave warm active", warm_run);
      const double ratio = static_cast<double>(cold_run.subtask_solves) /
                           static_cast<double>(warm_run.subtask_solves);
      std::printf("  warm restart does %.2fx fewer subtask solves "
                  "(re-primed %zu/%zu tasks, %zu/%zu resources; structural "
                  "gate: >= 1.0)\n",
                  ratio, warm.last_reprime_tasks(), w2.task_count(),
                  warm.last_reprime_resources(), w2.resource_count());
      scenarios.Push(ScenarioJson("task_leave", cold_run, warm_run, ratio));
      outcomes->push_back({ratio, false, true});
    }
  }

  // --- Capacity change: one resource loses 5% capacity (degraded mode).
  // The price spaces are unchanged, so the old optimum warm-starts directly.
  {
    const ResourceInfo& resource = workload.resources().front();
    auto shrunk =
        WithResourceCapacity(workload, resource.id, resource.capacity * 0.95);
    if (!shrunk.ok()) {
      std::printf("  capacity transform failed: %s\n", shrunk.error().c_str());
    } else {
      const Workload& w2 = shrunk.value();
      LatencyModel model2(w2);

      LlaEngine warm(w2, model2, ActiveConfig());
      warm.WarmStart(optimum);
      const ConvergenceRun warm_run = RunToConvergence(warm, prime);

      LlaEngine cold(w2, model2, DenseConfig());
      const ConvergenceRun cold_run = RunToConvergence(cold, prime);

      PrintRun("capacity cold dense", cold_run);
      PrintRun("capacity warm active", warm_run);
      const double ratio = static_cast<double>(cold_run.subtask_solves) /
                           static_cast<double>(warm_run.subtask_solves);
      std::printf("  warm restart does %.2fx fewer subtask solves\n", ratio);
      scenarios.Push(ScenarioJson("capacity_change", cold_run, warm_run, ratio));
      outcomes->push_back({ratio, false});
    }
  }

  results->Push(
      bench::JsonValue::Object()
          .Add("workload", bench::JsonValue::String(name))
          .Add("tasks", bench::JsonValue::Number(
                            static_cast<double>(workload.task_count())))
          .Add("subtasks", bench::JsonValue::Number(
                               static_cast<double>(workload.subtask_count())))
          .Add("scenarios", std::move(scenarios)));
}

// --- Accelerated dynamics axis -------------------------------------------

double g_momentum = 0.9;  ///< --momentum=X overrides for exploration
/// Distributed-axis momentum (--dist-momentum=X).  Lower than the engine's
/// 0.9 on purpose: the distributed gradient is one round STALE — the share
/// sums an agent differentiates against were computed from latencies the
/// controllers sent a round ago — and momentum amplifies the oscillation
/// that staleness seeds.  Empirically the paper workload's warm capacity
/// re-convergence tolerates beta <= 0.8; 0.7 is the sweet spot (1.8-2.5x),
/// while 0.9 overshoots into a feasibility-flickering limit cycle that
/// never pins the quality-matched crossing.
double g_dist_momentum = 0.7;

LlaConfig DynamicsConfigFor(DynamicsKind kind) {
  LlaConfig config = ActiveConfig();
  config.dynamics.kind = kind;  // adaptive restart on
  config.dynamics.momentum = g_momentum;
  return config;
}

/// A convergence run that also kept the per-iteration utilities, so the
/// quality-matched comparison can locate when a run first reached the plain
/// baseline's final utility.
struct RecordedRun {
  ConvergenceRun run;
  std::vector<double> utilities;  ///< utilities[i] = utility after step i+1
  std::vector<bool> feasible;     ///< tolerance-based, as the detector uses
};

RecordedRun RunRecordingUtilities(LlaEngine& engine, std::size_t prime_solves) {
  RecordedRun out;
  const auto start = std::chrono::steady_clock::now();
  std::uint64_t solves = 0;
  int steps = 0;
  while (!engine.Converged() && steps < kMaxIterations) {
    const IterationStats stats = engine.Step();
    out.utilities.push_back(stats.total_utility);
    out.feasible.push_back(stats.feasible);
    solves += static_cast<std::uint64_t>(stats.subtasks_solved);
    ++steps;
  }
  const auto stop = std::chrono::steady_clock::now();
  out.run.converged = engine.Converged();
  out.run.iterations = steps;
  out.run.subtask_solves = prime_solves + solves;
  out.run.wall_ms =
      std::chrono::duration<double, std::milli>(stop - start).count();
  out.run.final_utility =
      out.utilities.empty() ? 0.0 : out.utilities.back();
  return out;
}

/// First 1-based iteration that is (near-)feasible with utility at least
/// `target`, or -1 if the run never reaches that.  Feasibility matters:
/// early cold iterates overshoot the converged utility while violating
/// capacity, which is progress toward nothing.
int IterationsToQuality(const RecordedRun& recorded, double target) {
  for (std::size_t i = 0; i < recorded.utilities.size(); ++i) {
    if (recorded.feasible[i] && recorded.utilities[i] >= target) {
      return static_cast<int>(i) + 1;
    }
  }
  return -1;
}

/// Per accelerated run, how it compares against the plain counterpart of
/// the same scenario.  `diverged` is the CI gate; `regressed` is the honest
/// 1.2x marker.  Both judge `to_quality` — the iterations the run needed to
/// reach the plain baseline's final utility — not the run's own (later,
/// better-utility) convergence point.
struct DynamicsOutcome {
  std::string workload;
  std::string scenario;
  DynamicsKind kind = DynamicsKind::kPlain;
  int iterations = 0;
  int to_quality = -1;
  int plain_iterations = 0;
  bool converged = false;
  bool diverged = false;
  bool regressed = false;
};

bench::JsonValue DynamicsRunJson(const RecordedRun& recorded,
                                 const ConvergenceRun& plain,
                                 DynamicsOutcome* outcome) {
  const ConvergenceRun& run = recorded.run;
  outcome->iterations = run.iterations;
  outcome->plain_iterations = plain.iterations;
  outcome->converged = run.converged;
  // Quality tolerance: 10x the convergence detector's rel_tol (1e-5) — the
  // resolution below which two plateaus are indistinguishable to the
  // plateau test itself.
  const double tol = std::abs(plain.final_utility) * 1e-4;
  outcome->to_quality =
      IterationsToQuality(recorded, plain.final_utility - tol);
  const double ratio =
      outcome->to_quality > 0 && plain.iterations > 0
          ? static_cast<double>(outcome->to_quality) /
                static_cast<double>(plain.iterations)
          : 0.0;
  outcome->diverged = !run.converged || outcome->to_quality < 0 || ratio > 2.0;
  outcome->regressed = !outcome->diverged && ratio > 1.2;
  return RunJson(run)
      .Add("iterations_to_plain_quality",
           bench::JsonValue::Number(outcome->to_quality))
      .Add("quality_iterations_vs_plain", bench::JsonValue::Number(ratio))
      .Add("utility_vs_plain",
           bench::JsonValue::Number(run.final_utility - plain.final_utility))
      .Add("regressed", bench::JsonValue::Bool(outcome->regressed))
      .Add("diverged", bench::JsonValue::Bool(outcome->diverged));
}

void RunDynamicsCases(const std::string& name, const Workload& workload,
                      bench::JsonValue* results,
                      std::vector<DynamicsOutcome>* outcomes) {
  const std::size_t prime = workload.subtask_count();
  std::printf("\n%s dynamics axis (iterations to converge, active-set):\n",
              name.c_str());

  // Plain baselines first: the accelerated runs are judged against them.
  LatencyModel model(workload);
  ConvergenceRun plain_cold;
  ConvergenceRun plain_warm;
  PriceVector plain_optimum;
  {
    LlaEngine cold(workload, model, DynamicsConfigFor(DynamicsKind::kPlain));
    plain_cold = RunToConvergence(cold, prime);
    plain_optimum = cold.prices();
    const SubtaskId victim = workload.tasks().front().subtasks.front();
    model.SetAdditiveError(victim, 0.01);
    LlaEngine warm(workload, model, DynamicsConfigFor(DynamicsKind::kPlain));
    warm.WarmStart(plain_optimum);
    plain_warm = RunToConvergence(warm, prime);
    model.SetAdditiveError(victim, 0.0);
  }

  bench::JsonValue axis = bench::JsonValue::Array();
  axis.Push(bench::JsonValue::Object()
                .Add("dynamics", bench::JsonValue::String("plain"))
                .Add("cold", RunJson(plain_cold))
                .Add("wcet_warm", RunJson(plain_warm)));
  PrintRun("plain cold", plain_cold);
  PrintRun("plain wcet warm", plain_warm);

  for (const DynamicsKind kind :
       {DynamicsKind::kHeavyBall, DynamicsKind::kNesterov}) {
    const LlaConfig config = DynamicsConfigFor(kind);

    LlaEngine cold(workload, model, config);
    const RecordedRun cold_run = RunRecordingUtilities(cold, prime);
    // Warm restarts resume from the PLAIN reference optimum so every policy
    // re-converges from the same operating point; the comparison isolates
    // the dynamics, not the slightly different plateau each policy's own
    // cold run stopped at.
    const SubtaskId victim = workload.tasks().front().subtasks.front();
    model.SetAdditiveError(victim, 0.01);
    LlaEngine warm(workload, model, config);
    warm.WarmStart(plain_optimum);
    const RecordedRun warm_run = RunRecordingUtilities(warm, prime);
    model.SetAdditiveError(victim, 0.0);

    DynamicsOutcome cold_outcome{name, "cold", kind};
    DynamicsOutcome warm_outcome{name, "wcet_warm", kind};
    axis.Push(
        bench::JsonValue::Object()
            .Add("dynamics", bench::JsonValue::String(ToString(kind)))
            .Add("cold", DynamicsRunJson(cold_run, plain_cold, &cold_outcome))
            .Add("wcet_warm",
                 DynamicsRunJson(warm_run, plain_warm, &warm_outcome)));

    char label[64];
    std::snprintf(label, sizeof(label), "%s cold", ToString(kind));
    PrintRun(label, cold_run.run);
    std::snprintf(label, sizeof(label), "%s wcet warm", ToString(kind));
    PrintRun(label, warm_run.run);
    const double speedup =
        cold_run.run.iterations > 0
            ? static_cast<double>(plain_cold.iterations) /
                  static_cast<double>(cold_run.run.iterations)
            : 0.0;
    std::printf("  %s converges cold in %.2fx fewer iterations than plain\n",
                ToString(kind), speedup);
    std::printf("  %s reaches plain's final utility: cold %d iters "
                "(plain %d), warm %d iters (plain %d); final utility "
                "%+.4f / %+.4f vs plain\n",
                ToString(kind), cold_outcome.to_quality, plain_cold.iterations,
                warm_outcome.to_quality, plain_warm.iterations,
                cold_run.run.final_utility - plain_cold.final_utility,
                warm_run.run.final_utility - plain_warm.final_utility);
    outcomes->push_back(cold_outcome);
    outcomes->push_back(warm_outcome);
  }

  results->Push(bench::JsonValue::Object()
                    .Add("workload", bench::JsonValue::String(name))
                    .Add("policies", std::move(axis)));
}

// --- Distributed dynamics axis -------------------------------------------
//
// The same plain / heavy-ball / Nesterov comparison, but on the DISTRIBUTED
// deployment (DESIGN.md §7.12): resource agents exchanging messages with
// task controllers over a zero-delay in-process bus, the mu updates carrying
// per-agent momentum state.  Two scenarios:
//   * dist_cold — the sharded deployment (min(8, R) shard agents, the
//     configuration `lla solve --round-threads` uses) converging from
//     nothing; exercises ShardAgent's per-resource dynamics vectors.
//   * dist_capacity_warm — the HEADLINE: an unsharded deployment converges
//     plain, every endpoint is checkpointed, one resource loses 5% capacity,
//     and a new coordinator per policy restores all endpoints from the
//     snapshots and re-converges.  This is the paper's online story at the
//     deployment level: the running system absorbs a resource degradation
//     without a cold restart, and momentum must accelerate exactly this
//     re-convergence (snapshot dynamics fields ride along).
// Units are coordinator ROUNDS (one full controller->resource->controller
// message exchange), judged quality-matched against the plain counterpart
// exactly like the engine axis: diverged = never reaches plain's final
// utility or needs > 2x the plain rounds (exits 1, so CI fails).

runtime::CoordinatorConfig DistConfigFor(DynamicsKind kind, bool sharded,
                                         std::size_t resources) {
  runtime::CoordinatorConfig config;
  config.bus.base_delay_ms = 0.0;
  config.record_history = true;  // RunSyncRound reports via history
  config.dynamics.kind = kind;   // adaptive restart on
  config.dynamics.momentum = g_dist_momentum;
  if (sharded) {
    config.num_shards =
        static_cast<int>(std::min<std::size_t>(8, resources));
  }
  return config;
}

/// Synchronous rounds until convergence, recording per-round utility /
/// feasibility so IterationsToQuality applies unchanged (ConvergenceRun's
/// `iterations` carries rounds; subtask_solves stays 0 — round count is the
/// distributed cost unit).
RecordedRun RunCoordinatorRecording(runtime::Coordinator& coordinator) {
  RecordedRun out;
  const auto start = std::chrono::steady_clock::now();
  int rounds = 0;
  while (!coordinator.Converged() && rounds < kMaxIterations) {
    const runtime::RoundStats stats = coordinator.RunSyncRound();
    out.utilities.push_back(stats.total_utility);
    out.feasible.push_back(stats.feasible);
    ++rounds;
  }
  const auto stop = std::chrono::steady_clock::now();
  out.run.converged = coordinator.Converged();
  out.run.iterations = rounds;
  out.run.wall_ms =
      std::chrono::duration<double, std::milli>(stop - start).count();
  out.run.final_utility = out.utilities.empty() ? 0.0 : out.utilities.back();
  return out;
}

/// Checkpoints every endpoint of `from` and restores them into `to` (both
/// unsharded, structurally identical workloads — here they differ only in
/// one resource's capacity).
void TransplantState(const Workload& workload,
                     const runtime::Coordinator& from,
                     runtime::Coordinator* to) {
  for (const ResourceInfo& resource : workload.resources()) {
    to->RestartEndpoint(resource.id, from.CheckpointResource(resource.id));
  }
  for (const TaskInfo& task : workload.tasks()) {
    to->RestartEndpoint(task.id, from.CheckpointController(task.id));
  }
}

void RunDistributedDynamicsCases(const std::string& name,
                                 const Workload& workload,
                                 bench::JsonValue* results,
                                 std::vector<DynamicsOutcome>* outcomes) {
  std::printf("\n%s distributed dynamics axis (coordinator rounds to "
              "converge):\n",
              name.c_str());
  LatencyModel model(workload);

  // The degraded workload every capacity_change run re-converges on.
  // 10% degradation (the engine scenario uses 5%): at 5% the distributed
  // plain deployment re-plateaus within ~250 rounds — a re-convergence too
  // short to measure acceleration against — while 10% forces a real
  // price-space migration (plain needs ~1600 rounds).
  const ResourceInfo& victim = workload.resources().front();
  auto shrunk =
      WithResourceCapacity(workload, victim.id, victim.capacity * 0.90);
  if (!shrunk.ok()) {
    std::printf("  capacity transform failed: %s\n", shrunk.error().c_str());
    return;
  }
  const Workload& w2 = shrunk.value();
  LatencyModel model2(w2);

  // The checkpoint source: an unsharded plain deployment at its optimum.
  runtime::Coordinator source(
      workload, model,
      DistConfigFor(DynamicsKind::kPlain, /*sharded=*/false, 0));
  source.RunSync(kMaxIterations);

  // Plain baselines the accelerated runs are judged against.
  RecordedRun plain_cold;
  RecordedRun plain_warm;
  {
    runtime::Coordinator cold(
        workload, model,
        DistConfigFor(DynamicsKind::kPlain, /*sharded=*/true,
                      workload.resource_count()));
    plain_cold = RunCoordinatorRecording(cold);
    runtime::Coordinator warm(
        w2, model2, DistConfigFor(DynamicsKind::kPlain, /*sharded=*/false, 0));
    TransplantState(workload, source, &warm);
    plain_warm = RunCoordinatorRecording(warm);
  }

  bench::JsonValue axis = bench::JsonValue::Array();
  axis.Push(bench::JsonValue::Object()
                .Add("dynamics", bench::JsonValue::String("plain"))
                .Add("dist_cold", RunJson(plain_cold.run))
                .Add("dist_capacity_warm", RunJson(plain_warm.run)));
  PrintRun("plain dist cold (sharded)", plain_cold.run);
  PrintRun("plain dist capacity warm", plain_warm.run);

  for (const DynamicsKind kind :
       {DynamicsKind::kHeavyBall, DynamicsKind::kNesterov}) {
    runtime::Coordinator cold(
        workload, model,
        DistConfigFor(kind, /*sharded=*/true, workload.resource_count()));
    const RecordedRun cold_run = RunCoordinatorRecording(cold);

    runtime::Coordinator warm(w2, model2,
                              DistConfigFor(kind, /*sharded=*/false, 0));
    TransplantState(workload, source, &warm);
    const RecordedRun warm_run = RunCoordinatorRecording(warm);

    DynamicsOutcome cold_outcome{name, "dist_cold", kind};
    DynamicsOutcome warm_outcome{name, "dist_capacity_warm", kind};
    axis.Push(
        bench::JsonValue::Object()
            .Add("dynamics", bench::JsonValue::String(ToString(kind)))
            .Add("dist_cold",
                 DynamicsRunJson(cold_run, plain_cold.run, &cold_outcome))
            .Add("dist_capacity_warm",
                 DynamicsRunJson(warm_run, plain_warm.run, &warm_outcome)));

    char label[64];
    std::snprintf(label, sizeof(label), "%s dist cold", ToString(kind));
    PrintRun(label, cold_run.run);
    std::snprintf(label, sizeof(label), "%s dist capacity warm",
                  ToString(kind));
    PrintRun(label, warm_run.run);
    std::printf("  %s reaches plain quality: cold %d rounds (plain %d), "
                "capacity warm %d rounds (plain %d)\n",
                ToString(kind), cold_outcome.to_quality,
                plain_cold.run.iterations, warm_outcome.to_quality,
                plain_warm.run.iterations);
    outcomes->push_back(cold_outcome);
    outcomes->push_back(warm_outcome);
  }

  results->Push(bench::JsonValue::Object()
                    .Add("workload", bench::JsonValue::String(name))
                    .Add("policies", std::move(axis)));
}

}  // namespace

int main(int argc, char** argv) {
  bool quick = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) quick = true;
    if (std::strncmp(argv[i], "--momentum=", 11) == 0) {
      g_momentum = std::atof(argv[i] + 11);
    }
    if (std::strncmp(argv[i], "--dist-momentum=", 16) == 0) {
      g_dist_momentum = std::atof(argv[i] + 16);
    }
  }

  bench::PrintHeader(
      "bench_convergence — subtask solves and wall time to converge",
      "incremental active-set engine (dirty-tracked sparse dual iteration)",
      "warm restart after a single-subtask WCET perturbation >= 5x fewer "
      "subtask solves than a cold dense run; cold trajectories bit-identical "
      "dense vs. active");

  // Workloads must actually converge under the criterion (utility plateau +
  // feasibility + complementary slackness) or "work to converge" is
  // meaningless; the paper workload at replication 1 and the default random
  // workload are the converging cases the warm-start tests also use.
  auto paper = MakeScaledSimWorkload(1, /*scale_critical_times=*/true);
  if (!paper.ok()) {
    std::printf("workload error: %s\n", paper.error().c_str());
    return 1;
  }

  bench::JsonValue results = bench::JsonValue::Array();
  std::vector<ScenarioOutcome> outcomes;
  RunWorkloadCases("paper_3task", paper.value(), &results, &outcomes);

  bench::JsonValue dynamics_results = bench::JsonValue::Array();
  std::vector<DynamicsOutcome> dynamics_outcomes;
  RunDynamicsCases("paper_3task", paper.value(), &dynamics_results,
                   &dynamics_outcomes);

  bench::JsonValue dist_dynamics_results = bench::JsonValue::Array();
  RunDistributedDynamicsCases("paper_3task", paper.value(),
                              &dist_dynamics_results, &dynamics_outcomes);

  if (!quick) {
    RandomWorkloadConfig random_config;
    random_config.seed = 42;
    random_config.target_utilization = 0.7;
    auto random_workload = MakeRandomWorkload(random_config);
    if (!random_workload.ok()) {
      std::printf("workload error: %s\n", random_workload.error().c_str());
      return 1;
    }
    RunWorkloadCases("random_default", random_workload.value(), &results,
                     &outcomes);
    RunDynamicsCases("random_default", random_workload.value(),
                     &dynamics_results, &dynamics_outcomes);
  }

  bool meets_5x = true;
  bool meets_structural_warm = true;
  for (const ScenarioOutcome& outcome : outcomes) {
    if (outcome.wcet && outcome.solve_ratio < 5.0) meets_5x = false;
    if (outcome.structural && outcome.solve_ratio < 1.0) {
      meets_structural_warm = false;
    }
  }
  std::printf("\nacceptance gate (wcet warm restart >= 5x fewer solves): %s\n",
              meets_5x ? "PASS" : "FAIL");
  std::printf("structural gate (warm restart after a task leave never worse "
              "than cold, ratio >= 1.0): %s\n",
              meets_structural_warm ? "PASS" : "FAIL");

  // Dynamics gates.  meets_accel_1_5x: some accelerated policy fully
  // converges cold on the paper workload in >= 1.5x fewer iterations than
  // plain (raw count — the strict version of the claim).
  // dynamics_diverged (fails the bench, and thus CI): any accelerated run
  // that did not converge, never reached the plain baseline's final
  // utility, or needed > 2x the plain iterations to reach it.
  bool meets_accel_1_5x = false;
  // Distributed gate (DESIGN.md §7.12): heavy-ball absorbs the capacity
  // change in >= 1.5x fewer coordinator rounds than plain, quality-matched
  // (rounds until the restored deployment is feasible at the plain
  // baseline's re-converged utility).
  bool meets_dist_accel_1_5x = false;
  bool dynamics_diverged = false;
  bool dynamics_regressed = false;
  for (const DynamicsOutcome& outcome : dynamics_outcomes) {
    if (outcome.workload == "paper_3task" && outcome.scenario == "cold" &&
        outcome.converged && outcome.iterations > 0 &&
        static_cast<double>(outcome.plain_iterations) >=
            1.5 * static_cast<double>(outcome.iterations)) {
      meets_accel_1_5x = true;
    }
    if (outcome.workload == "paper_3task" &&
        outcome.scenario == "dist_capacity_warm" &&
        outcome.kind == DynamicsKind::kHeavyBall && outcome.converged &&
        outcome.to_quality > 0 &&
        static_cast<double>(outcome.plain_iterations) >=
            1.5 * static_cast<double>(outcome.to_quality)) {
      meets_dist_accel_1_5x = true;
    }
    if (outcome.diverged) {
      dynamics_diverged = true;
      std::printf("DIVERGED: %s %s %s (%d iters to plain quality vs "
                  "plain %d)\n",
                  ToString(outcome.kind), outcome.workload.c_str(),
                  outcome.scenario.c_str(), outcome.to_quality,
                  outcome.plain_iterations);
    } else if (outcome.regressed) {
      dynamics_regressed = true;
      std::printf("regression (> 1.2x plain): %s %s %s (%d iters to plain "
                  "quality vs plain %d)\n",
                  ToString(outcome.kind), outcome.workload.c_str(),
                  outcome.scenario.c_str(), outcome.to_quality,
                  outcome.plain_iterations);
    }
  }
  std::printf("dynamics gate (>= 1.5x fewer cold iterations): %s\n",
              meets_accel_1_5x ? "PASS" : "FAIL");
  std::printf("dynamics gate (plain quality reached within 2x plain "
              "iterations): %s\n",
              dynamics_diverged ? "FAIL" : "PASS");
  std::printf("distributed dynamics gate (heavy-ball capacity change >= "
              "1.5x fewer rounds to plain quality): %s\n",
              meets_dist_accel_1_5x ? "PASS" : "FAIL");

  bench::JsonValue root = bench::BenchReportRoot(
      "convergence", "subtask_solves_to_converge", quick);
  root.Add("meets_5x", bench::JsonValue::Bool(meets_5x));
  root.Add("meets_structural_warm",
           bench::JsonValue::Bool(meets_structural_warm));
  root.Add("meets_accel_1_5x", bench::JsonValue::Bool(meets_accel_1_5x));
  root.Add("meets_dist_accel_1_5x",
           bench::JsonValue::Bool(meets_dist_accel_1_5x));
  root.Add("dynamics_diverged", bench::JsonValue::Bool(dynamics_diverged));
  root.Add("dynamics_regressed", bench::JsonValue::Bool(dynamics_regressed));
  root.Add("results", std::move(results));
  root.Add("dynamics", std::move(dynamics_results));
  root.Add("distributed_dynamics", std::move(dist_dynamics_results));
  if (bench::EmitBenchReport("BENCH_convergence.json", root) != 0) return 1;
  // A structural warm restart regressing below cold fails the bench (and
  // thus the CI bench job) exactly like a diverging dynamics run — and so
  // does the distributed heavy-ball missing the 1.5x capacity-change bar.
  return (dynamics_diverged || !meets_structural_warm ||
          !meets_dist_accel_1_5x)
             ? 1
             : 0;
}
