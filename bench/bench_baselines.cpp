// Compares LLA's online optimized assignment against the offline
// deadline-slicing baselines the paper discusses in Sec. 7, on the paper
// workload and on random workloads, plus the independent barrier-solver
// optimum as the upper reference.
#include <cmath>
#include <cstdio>

#include "baselines/rate_control.h"
#include "baselines/slicing.h"
#include "bench_util.h"
#include "core/engine.h"
#include "solver/barrier.h"
#include "workloads/paper.h"
#include "workloads/random.h"

using namespace lla;
using namespace lla::baselines;

namespace {

void CompareOn(const std::string& name, const Workload& w) {
  LatencyModel model(w);
  constexpr UtilityVariant kVariant = UtilityVariant::kPathWeighted;

  LlaConfig config = bench::PaperLlaConfig();
  config.gamma0 = 3.0;
  config.record_history = false;
  LlaEngine engine(w, model, config);
  const RunResult run = engine.Run(12000);

  std::printf("\n--- %s (%zu tasks, %zu subtasks, %zu resources) ---\n",
              name.c_str(), w.task_count(), w.subtask_count(),
              w.resource_count());
  std::printf("%-28s %14s %10s %8s\n", "method", "utility", "feasible",
              "gap");

  const double lla_utility = run.final_utility;
  BarrierSolver barrier(w, model,
                        BarrierSolverConfig{.variant = kVariant});
  auto optimum = barrier.Solve();
  const double reference =
      optimum.ok() ? optimum.value().utility : lla_utility;
  const double scale = std::max(1.0, std::fabs(reference));

  if (optimum.ok()) {
    std::printf("%-28s %14.2f %10s %7.2f%%\n", "barrier optimum (ref)",
                optimum.value().utility, "yes", 0.0);
  } else {
    std::printf("%-28s %14s %10s %8s  (%s)\n", "barrier optimum (ref)", "-",
                "-", "-", optimum.error().c_str());
  }
  std::printf("%-28s %14.2f %10s %7.2f%%\n", "LLA (online)", lla_utility,
              run.final_feasibility.feasible ? "yes" : "no",
              100.0 * (reference - lla_utility) / scale);

  for (SlicingPolicy policy :
       {SlicingPolicy::kEqual, SlicingPolicy::kWcetProportional,
        SlicingPolicy::kLaxityFair}) {
    const BaselineResult result =
        EvaluateBaseline(w, model, policy, kVariant);
    std::printf("%-28s %14.2f %10s %7.2f%%%s\n", ToString(policy),
                result.utility, result.feasible ? "yes" : "no",
                100.0 * (reference - result.utility) / scale,
                result.repaired ? "  (repaired)" : "");
  }

  // Utilization-based rate control (the paper's closest related work):
  // manages utilization, not latency — report its deadline outcome and
  // the throughput it gives up.
  const RateControlResult rate = RunRateControl(w, model, kVariant);
  std::printf("%-28s %14.2f %10s %8s  (throughput x%.2f)\n",
              "rate control (EUC-style)", rate.utility,
              rate.deadlines_met ? "yes" : "no", "-",
              rate.throughput_ratio);
}

}  // namespace

int main() {
  bench::PrintHeader(
      "bench_baselines — LLA vs offline deadline slicing",
      "Sec. 7 comparison (LLA produces an optimal latency assignment; "
      "slicing heuristics do not use prices/feedback)",
      "LLA matches the independent barrier optimum; every slicing baseline "
      "trails it (or is infeasible before repair) on every workload");

  auto paper_workload = MakeSimWorkload();
  CompareOn("paper 3-task workload", paper_workload.value());

  for (std::uint64_t seed : {11, 23, 47}) {
    RandomWorkloadConfig config;
    config.seed = seed;
    config.num_tasks = 5;
    config.target_utilization = 0.7;
    auto workload = MakeRandomWorkload(config);
    if (!workload.ok()) {
      std::printf("random workload %llu failed: %s\n",
                  static_cast<unsigned long long>(seed),
                  workload.error().c_str());
      continue;
    }
    CompareOn("random workload seed=" + std::to_string(seed),
              workload.value());
  }
  return 0;
}
